//! Shared deduplicated sequence table (paper §III-B).
//!
//! The paper's compression rests on two observations about binary 3×3
//! kernels: the 512 possible 9-bit sequences are heavily frequency-skewed,
//! and many filters reuse the same sequence for the same input channel
//! (Hamming-1 clustering collapses most of the rest). A [`SequenceBank`]
//! carries that structure into the runtime instead of throwing it away at
//! decode time: one table of *unique* sequences per record, per-filter
//! index lists referencing it, and Hamming-1 parent links between table
//! entries.
//!
//! The bank is an alternative weight *representation* — `PackedKernel`
//! lane words can be derived from it ([`SequenceBank::to_packed`]) and
//! recovered back ([`SequenceBank::from_packed`]) losslessly — but its
//! real payoff is the weight-stationary execution path: the engine
//! memoizes the partial popcount contribution of each unique sequence
//! once and scales it by the sequence's filter fan-out (see
//! [`BankPlan`]), so heavily shared sequences are computed once instead
//! of once per filter.

use crate::error::{BitnnError, Result};
use crate::pack::PackedKernel;
use crate::weightgen::{NUM_SEQUENCES, SEQ_BITS};
use crate::LANE_BITS;

/// Sentinel parent index for Hamming-1 cluster roots.
pub const NO_PARENT: u32 = u32::MAX;

/// Per-channel inverted index over a [`SequenceBank`], precomputed for the
/// weight-stationary kernel.
///
/// For each input channel `c`, the plan lists the unique sequences that
/// appear at that channel across all filters, and for each such *entry*
/// the list of filters using it. The memoized conv kernel walks entries:
/// one popcount row per entry, then one vector add per filter in its
/// fan-out list — total adds are exactly `K` per channel regardless of
/// how skewed the sharing is, while popcount work shrinks with dedup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankPlan {
    /// `channels + 1` offsets into `entry_seqs` / `entry_offsets`.
    chan_offsets: Vec<u32>,
    /// Sequence value of each entry.
    entry_seqs: Vec<u16>,
    /// `entries + 1` offsets into `filter_ids`.
    entry_offsets: Vec<u32>,
    /// Flat fan-out lists: filters sharing each entry, ascending.
    filter_ids: Vec<u32>,
}

/// One plan entry: a unique sequence at some channel plus the filters
/// that use it there.
#[derive(Debug, Clone, Copy)]
pub struct PlanEntry<'a> {
    /// The 9-bit sequence value.
    pub seq: u16,
    /// Filters whose kernel uses `seq` at this channel (ascending).
    pub filters: &'a [u32],
}

impl BankPlan {
    /// Entries for input channel `c`.
    #[inline]
    pub fn entries(&self, c: usize) -> impl Iterator<Item = PlanEntry<'_>> {
        let lo = self.chan_offsets[c] as usize;
        let hi = self.chan_offsets[c + 1] as usize;
        (lo..hi).map(move |e| PlanEntry {
            seq: self.entry_seqs[e],
            filters: &self.filter_ids
                [self.entry_offsets[e] as usize..self.entry_offsets[e + 1] as usize],
        })
    }

    /// Total number of (channel, unique sequence) entries.
    pub fn num_entries(&self) -> usize {
        self.entry_seqs.len()
    }
}

/// A deduplicated table of 9-bit kernel sequences for one `[K, C, 3, 3]`
/// record, with per-filter index lists and Hamming-1 parent links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceBank {
    filters: usize,
    channels: usize,
    /// Unique sequences in first-appearance order.
    seqs: Vec<u16>,
    /// Occurrences of each unique sequence across all `K * C` slots.
    counts: Vec<u32>,
    /// Hamming-1 cluster reference per unique sequence: index of an
    /// earlier bank entry at Hamming distance 1, or [`NO_PARENT`].
    parents: Vec<u32>,
    /// `filters * channels` bank indices, row-major `(filter, channel)`.
    indices: Vec<u32>,
    plan: BankPlan,
}

/// Incremental builder fed sequences in `(filter, channel)` row-major
/// order — exactly the order a streaming decoder produces them.
#[derive(Debug)]
pub struct BankBuilder {
    filters: usize,
    channels: usize,
    slot_of: Vec<u32>,
    seqs: Vec<u16>,
    counts: Vec<u32>,
    parents: Vec<u32>,
    indices: Vec<u32>,
}

impl BankBuilder {
    /// Start a bank for a `[filters, channels, 3, 3]` kernel record.
    pub fn new(filters: usize, channels: usize) -> Self {
        BankBuilder {
            filters,
            channels,
            slot_of: vec![NO_PARENT; NUM_SEQUENCES],
            seqs: Vec::new(),
            counts: Vec::new(),
            parents: Vec::new(),
            indices: Vec::with_capacity(filters * channels),
        }
    }

    /// Append the next sequence (row-major `(filter, channel)` order).
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] if `seq >= 512` or more than
    /// `filters * channels` sequences are pushed.
    pub fn push(&mut self, seq: u16) -> Result<()> {
        if seq as usize >= NUM_SEQUENCES {
            return Err(BitnnError::InvalidConfig(format!(
                "sequence {seq} out of 9-bit range"
            )));
        }
        if self.indices.len() >= self.filters * self.channels {
            return Err(BitnnError::InvalidConfig(format!(
                "bank overfull: more than {} sequences pushed",
                self.filters * self.channels
            )));
        }
        let mut slot = self.slot_of[seq as usize];
        if slot == NO_PARENT {
            slot = self.seqs.len() as u32;
            self.slot_of[seq as usize] = slot;
            self.seqs.push(seq);
            self.counts.push(0);
            self.parents.push(self.find_parent(seq));
        }
        self.counts[slot as usize] += 1;
        self.indices.push(slot);
        Ok(())
    }

    /// Pick the Hamming-1 neighbour already in the bank with the highest
    /// occupancy so far (ties broken toward the older entry), or
    /// [`NO_PARENT`] when `seq` starts a new cluster.
    fn find_parent(&self, seq: u16) -> u32 {
        let mut best = NO_PARENT;
        let mut best_count = 0u32;
        for b in 0..SEQ_BITS {
            let neigh = seq ^ (1 << b);
            let slot = self.slot_of[neigh as usize];
            if slot != NO_PARENT {
                let count = self.counts[slot as usize];
                if best == NO_PARENT || count > best_count || (count == best_count && slot < best) {
                    best = slot;
                    best_count = count;
                }
            }
        }
        best
    }

    /// Finalize, building the per-channel inverted index.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] if fewer than
    /// `filters * channels` sequences were pushed.
    pub fn finish(self) -> Result<SequenceBank> {
        let want = self.filters * self.channels;
        if self.indices.len() != want {
            return Err(BitnnError::InvalidConfig(format!(
                "bank underfull: {} of {want} sequences pushed",
                self.indices.len()
            )));
        }
        let plan = build_plan(self.filters, self.channels, &self.seqs, &self.indices);
        Ok(SequenceBank {
            filters: self.filters,
            channels: self.channels,
            seqs: self.seqs,
            counts: self.counts,
            parents: self.parents,
            indices: self.indices,
            plan,
        })
    }
}

fn build_plan(filters: usize, channels: usize, seqs: &[u16], indices: &[u32]) -> BankPlan {
    let mut chan_offsets = Vec::with_capacity(channels + 1);
    let mut entry_seqs = Vec::new();
    let mut entry_offsets = vec![0u32];
    let mut filter_ids = Vec::with_capacity(indices.len());
    // Per-channel scratch: bank slot -> entry position this channel, with
    // an epoch stamp so the table is reused without clearing.
    let mut entry_at = vec![(0u32, u32::MAX); seqs.len()];
    let mut lists: Vec<Vec<u32>> = Vec::new();
    chan_offsets.push(0);
    for c in 0..channels {
        let epoch = c as u32;
        let mut order: Vec<u32> = Vec::new();
        for f in 0..filters {
            let slot = indices[f * channels + c] as usize;
            let (e, stamp) = entry_at[slot];
            let e = if stamp == epoch {
                e as usize
            } else {
                let e = order.len();
                entry_at[slot] = (e as u32, epoch);
                order.push(slot as u32);
                if lists.len() <= e {
                    lists.push(Vec::new());
                } else {
                    lists[e].clear();
                }
                e
            };
            lists[e].push(f as u32);
        }
        for (e, &slot) in order.iter().enumerate() {
            entry_seqs.push(seqs[slot as usize]);
            filter_ids.extend_from_slice(&lists[e]);
            entry_offsets.push(filter_ids.len() as u32);
        }
        chan_offsets.push(entry_seqs.len() as u32);
    }
    BankPlan {
        chan_offsets,
        entry_seqs,
        entry_offsets,
        filter_ids,
    }
}

impl SequenceBank {
    /// Recover the bank from dense channel-packed lane words.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] unless the kernel is 3×3.
    pub fn from_packed(packed: &PackedKernel) -> Result<Self> {
        if packed.kh() != 3 || packed.kw() != 3 {
            return Err(BitnnError::ShapeMismatch {
                expected: "3x3 kernel for sequence bank".into(),
                got: format!("{}x{}", packed.kh(), packed.kw()),
            });
        }
        let (k, c) = (packed.filters(), packed.channels());
        let mut b = BankBuilder::new(k, c);
        for f in 0..k {
            for ch in 0..c {
                let mut seq = 0u16;
                for p in 0..SEQ_BITS {
                    let bit = (packed.position_lanes(f, p)[ch / LANE_BITS] >> (ch % LANE_BITS)) & 1;
                    seq |= (bit as u16) << (SEQ_BITS - 1 - p);
                }
                b.push(seq)?;
            }
        }
        b.finish()
    }

    /// Materialize dense channel-packed lane words from the bank.
    pub fn to_packed(&self) -> PackedKernel {
        let (k, c) = (self.filters, self.channels);
        let lanes = crate::lanes_for(c);
        let mut data = vec![0u64; k * SEQ_BITS * lanes];
        for f in 0..k {
            for ch in 0..c {
                let seq = self.seqs[self.indices[f * c + ch] as usize];
                for p in 0..SEQ_BITS {
                    if (seq >> (SEQ_BITS - 1 - p)) & 1 == 1 {
                        data[(f * SEQ_BITS + p) * lanes + ch / LANE_BITS] |=
                            1u64 << (ch % LANE_BITS);
                    }
                }
            }
        }
        PackedKernel::from_lane_words(k, c, 3, 3, data)
            .expect("bank geometry is valid by construction")
    }

    /// Number of output filters `K`.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Number of input channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of unique sequences in the table.
    pub fn unique_count(&self) -> usize {
        self.seqs.len()
    }

    /// Total sequence slots (`filters * channels`).
    pub fn total_count(&self) -> usize {
        self.filters * self.channels
    }

    /// The unique sequence table, first-appearance order.
    pub fn seqs(&self) -> &[u16] {
        &self.seqs
    }

    /// Occurrence count per unique sequence.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Hamming-1 parent link per unique sequence ([`NO_PARENT`] = root).
    pub fn parents(&self) -> &[u32] {
        &self.parents
    }

    /// Bank index of `(filter, channel)`.
    #[inline]
    pub fn index(&self, filter: usize, channel: usize) -> u32 {
        self.indices[filter * self.channels + channel]
    }

    /// Sequence value of `(filter, channel)`.
    #[inline]
    pub fn sequence(&self, filter: usize, channel: usize) -> u16 {
        self.seqs[self.index(filter, channel) as usize]
    }

    /// The per-channel inverted index used by the memoized kernel.
    pub fn plan(&self) -> &BankPlan {
        &self.plan
    }

    /// Cross-filter dedup ratio: total slots / unique sequences (≥ 1).
    pub fn dedup_ratio(&self) -> f64 {
        self.total_count() as f64 / self.unique_count().max(1) as f64
    }

    /// Number of Hamming-1 cluster roots in the table.
    pub fn h1_root_count(&self) -> usize {
        self.parents.iter().filter(|&&p| p == NO_PARENT).count()
    }

    /// The `k` most frequent sequences as `(sequence, count)`, count
    /// descending, ties toward the smaller sequence value.
    pub fn top_k(&self, k: usize) -> Vec<(u16, u32)> {
        let mut v: Vec<(u16, u32)> = self
            .seqs
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Approximate in-memory footprint of the bank (table + indices +
    /// plan), in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.seqs.len() * 2
            + self.counts.len() * 4
            + self.parents.len() * 4
            + self.indices.len() * 4
            + self.plan.chan_offsets.len() * 4
            + self.plan.entry_seqs.len() * 2
            + self.plan.entry_offsets.len() * 4
            + self.plan.filter_ids.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weightgen::{random_kernel, read_sequence, SeqDistribution};

    #[test]
    fn roundtrip_via_packed() {
        let kernel = random_kernel(&[8, 12, 3, 3], 11);
        let packed = PackedKernel::pack(&kernel).unwrap();
        let bank = SequenceBank::from_packed(&packed).unwrap();
        assert_eq!(bank.to_packed(), packed);
        for f in 0..8 {
            for c in 0..12 {
                assert_eq!(bank.sequence(f, c), read_sequence(&kernel, f, c));
            }
        }
    }

    #[test]
    fn counts_sum_to_total_and_ratio_at_least_one() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let dist = SeqDistribution::for_block(2, 9);
        let kernel = dist.sample_kernel(16, 24, &mut rng);
        let packed = PackedKernel::pack(&kernel).unwrap();
        let bank = SequenceBank::from_packed(&packed).unwrap();
        let sum: u64 = bank.counts().iter().map(|&c| c as u64).sum();
        assert_eq!(sum, bank.total_count() as u64);
        assert!(bank.dedup_ratio() >= 1.0);
        assert!(bank.unique_count() <= NUM_SEQUENCES);
    }

    #[test]
    fn plan_covers_every_filter_once_per_channel() {
        let kernel = random_kernel(&[16, 8, 3, 3], 5);
        let packed = PackedKernel::pack(&kernel).unwrap();
        let bank = SequenceBank::from_packed(&packed).unwrap();
        for c in 0..8 {
            let mut seen = [false; 16];
            for e in bank.plan().entries(c) {
                for &f in e.filters {
                    assert!(!seen[f as usize], "filter listed twice");
                    seen[f as usize] = true;
                    assert_eq!(bank.sequence(f as usize, c), e.seq);
                }
            }
            assert!(seen.iter().all(|&s| s), "filter missing from plan");
        }
    }

    #[test]
    fn h1_parents_are_at_distance_one() {
        let kernel = random_kernel(&[32, 16, 3, 3], 7);
        let packed = PackedKernel::pack(&kernel).unwrap();
        let bank = SequenceBank::from_packed(&packed).unwrap();
        for (i, &p) in bank.parents().iter().enumerate() {
            if p != NO_PARENT {
                assert!((p as usize) < i, "parent must be an earlier entry");
                let d = (bank.seqs()[i] ^ bank.seqs()[p as usize]).count_ones();
                assert_eq!(d, 1);
            }
        }
        assert!(bank.h1_root_count() >= 1);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = BankBuilder::new(2, 2);
        assert!(b.push(512).is_err());
        b.push(1).unwrap();
        assert!(b.finish().is_err());
        let mut b = BankBuilder::new(1, 1);
        b.push(3).unwrap();
        assert!(b.push(4).is_err());
    }
}
