//! The persistent worker pool behind [`crate::engine::Engine`].
//!
//! The engine's first thread pool forked and joined scoped OS threads on
//! every dispatch; at µs-scale op granularity the spawn/join cost dwarfed
//! the compute and every multi-thread configuration *regressed* versus one
//! thread. This module replaces it with a process-wide pool:
//!
//! * **Persistent workers, parked on a condvar** — one pool of
//!   `available_parallelism() - 1` workers is spawned on first use and
//!   lives for the process. Between jobs the workers sleep in
//!   [`Condvar::wait`]; waking one costs a futex wake, not a `clone(2)`.
//! * **Chunked jobs with atomic tail-stealing** — a job is a contiguous
//!   index range pre-split into more chunks than workers. Workers (and the
//!   dispatching thread, which always participates) claim chunks with one
//!   `fetch_add` each, so a slow worker's tail chunks are stolen by fast
//!   ones and no chunk is ever run twice.
//! * **Shared by everything** — the pool is global, so one set of workers
//!   serves every [`crate::engine::Engine`], every layer, every batch, and
//!   any number of concurrent callers. Jobs from concurrent dispatchers
//!   queue up and drain in submission order; a dispatcher only blocks on
//!   *its own* job's completion.
//!
//! The pool intentionally has no unpark/shutdown API: workers are idle
//! (parked) whenever no job is queued, and the process exit tears them
//! down. Dispatch from inside a worker is not supported (the engine never
//! nests parallel sections — per-item batch workers run single-threaded
//! engines), and would merely run inline if attempted, because workers are
//! not counted as dispatchers.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Stack size for pool workers: the band kernels are flat loops with a few
/// KB of locals, so 512 KiB leaves two orders of magnitude of headroom.
const WORKER_STACK_BYTES: usize = 512 * 1024;

/// One submitted parallel job: `chunks` indices handed out by `fetch_add`
/// on `next`, run through the type-erased `run` pointer.
struct Job {
    /// Type-erased pointer to the dispatcher's chunk closure. Only valid
    /// while the dispatcher is blocked in [`WorkerPool::dispatch`]; the
    /// completion protocol below guarantees no dereference outlives it.
    run: *const (dyn Fn(usize) + Sync),
    /// Total number of chunks.
    chunks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Chunks fully executed.
    completed: AtomicUsize,
    /// Workers that have joined this job (capped at `max_workers`).
    joined: AtomicUsize,
    /// Maximum number of *pool workers* that may join (the dispatcher is
    /// always an extra participant on top).
    max_workers: usize,
    /// First panic payload caught in a chunk closure. A panicking chunk
    /// still counts as completed (so the dispatcher never deadlocks and
    /// the worker thread survives); the dispatcher rethrows the payload
    /// after the job fully drains and is retired from the queue.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Completion latch for the dispatcher.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `run` is only dereferenced for successfully claimed chunk
// indices, and every claimed chunk completes (incrementing `completed`)
// before `dispatch` returns — so the pointee outlives every dereference.
// All other fields are plain atomics/sync primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Whether every chunk has been claimed (not necessarily completed).
    fn drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.chunks
    }

    /// Try to reserve a worker slot on this job.
    fn try_join(&self) -> bool {
        let mut cur = self.joined.load(Ordering::Relaxed);
        while cur < self.max_workers {
            match self.joined.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }

    /// Claim and run chunks until none are left. Returns whether this call
    /// completed the final chunk.
    ///
    /// # Safety
    ///
    /// Must only be called while the dispatcher is blocked in
    /// [`WorkerPool::dispatch`] for this job (enforced by the completion
    /// protocol: `dispatch` waits for `completed == chunks`).
    unsafe fn drain(&self) -> bool {
        let mut finished_last = false;
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.chunks {
                return finished_last;
            }
            // SAFETY: `chunk` was claimed exactly once and the dispatcher
            // is still parked in `dispatch`, so the closure is alive.
            // A panic is contained here — never unwound through the pool —
            // so a panicking chunk can neither kill a worker nor let the
            // dispatcher unwind out of `dispatch` while the queue still
            // references its stack frame.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| unsafe { (*self.run)(chunk) })) {
                self.panic
                    .lock()
                    .expect("pool mutex poisoned")
                    .get_or_insert(payload);
            }
            let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            finished_last = done == self.chunks;
        }
    }

    /// Signal the dispatcher that the final chunk completed.
    fn signal_done(&self) {
        let mut done = self.done.lock().expect("pool mutex poisoned");
        *done = true;
        self.done_cv.notify_all();
    }
}

/// Queue state shared between dispatchers and workers.
#[derive(Default)]
struct Queue {
    jobs: Vec<Arc<Job>>,
}

/// The shared pool: job queue plus the condvar workers park on.
struct Shared {
    queue: Mutex<Queue>,
    work_cv: Condvar,
}

/// A persistent pool of parked worker threads (see the module docs).
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    /// Spawned worker count (`hw_threads - 1`, possibly zero).
    workers: usize,
    /// Cached `available_parallelism()`.
    hw_threads: usize,
}

impl WorkerPool {
    /// The process-wide pool, spawned on first use: one worker per
    /// hardware thread beyond the callers' own.
    pub(crate) fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let hw_threads = thread::available_parallelism().map_or(1, usize::from);
            WorkerPool::with_workers(hw_threads - 1, hw_threads)
        })
    }

    /// A pool with an explicit worker count (tests force real workers even
    /// on single-core machines; production code uses [`Self::global`]).
    pub(crate) fn with_workers(workers: usize, hw_threads: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            work_cv: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("bitnn-pool-{i}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        WorkerPool {
            shared,
            workers,
            hw_threads,
        }
    }

    /// Hardware parallelism observed at pool creation.
    pub(crate) fn hw_threads(&self) -> usize {
        self.hw_threads
    }

    /// Run `run(chunk)` for every `chunk in 0..chunks`, each exactly once,
    /// using up to `max_workers` pool workers alongside the calling thread.
    /// Blocks until every chunk has completed. With no workers to enlist
    /// (or a single chunk) everything runs inline on the calling thread.
    pub(crate) fn dispatch(&self, chunks: usize, max_workers: usize, run: &(dyn Fn(usize) + Sync)) {
        let max_workers = max_workers.min(self.workers);
        if chunks <= 1 || max_workers == 0 {
            for chunk in 0..chunks {
                run(chunk);
            }
            return;
        }
        let job = Arc::new(Job {
            // Erase the borrow's lifetime so parked workers can hold the
            // job; see `Job::drain` — every dereference happens before
            // this function returns. SAFETY: only the lifetime changes.
            run: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(run)
            },
            chunks,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            joined: AtomicUsize::new(0),
            max_workers,
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().expect("pool mutex poisoned");
            queue.jobs.push(Arc::clone(&job));
        }
        if max_workers == 1 {
            self.shared.work_cv.notify_one();
        } else {
            self.shared.work_cv.notify_all();
        }
        // The dispatcher always participates; with tail-stealing it
        // typically claims the lion's share and never parks at all.
        // SAFETY: we are the dispatcher and block below until completion.
        if unsafe { job.drain() } {
            job.signal_done();
        }
        {
            let mut done = job.done.lock().expect("pool mutex poisoned");
            while !*done {
                done = job.done_cv.wait(done).expect("pool mutex poisoned");
            }
        }
        // Retire the job so parked workers stop scanning it, then — and
        // only then, with the queue no longer referencing this stack
        // frame — rethrow the first chunk panic on the dispatcher.
        {
            let mut queue = self.shared.queue.lock().expect("pool mutex poisoned");
            queue.jobs.retain(|j| !Arc::ptr_eq(j, &job));
        }
        let payload = job.panic.lock().expect("pool mutex poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Body of one pool worker: park until a joinable job appears, drain it,
/// repeat forever (the process exit reaps the thread).
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool mutex poisoned");
            loop {
                if let Some(job) = queue
                    .jobs
                    .iter()
                    .find(|j| !j.drained() && j.try_join())
                    .map(Arc::clone)
                {
                    break job;
                }
                queue = shared.work_cv.wait(queue).expect("pool mutex poisoned");
            }
        };
        // SAFETY: the job was found in the queue, so its dispatcher is
        // still blocked in `dispatch` waiting for completion.
        if unsafe { job.drain() } {
            job.signal_done();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A test pool with real workers regardless of the host's core count,
    /// so the claim/steal/park paths are exercised even on 1-core CI.
    fn test_pool() -> WorkerPool {
        WorkerPool::with_workers(3, 4)
    }

    #[test]
    fn dispatch_runs_every_chunk_exactly_once() {
        let pool = test_pool();
        for chunks in [0usize, 1, 2, 7, 64, 257] {
            let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.dispatch(chunks, 8, &|c| {
                counts[c].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {i} of {chunks}");
            }
        }
    }

    #[test]
    fn dispatch_with_zero_workers_runs_inline() {
        let pool = WorkerPool::with_workers(0, 1);
        let sum = AtomicU64::new(0);
        pool.dispatch(16, 8, &|c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..16).sum::<u64>());
        assert_eq!(pool.hw_threads(), 1);
    }

    #[test]
    fn concurrent_dispatchers_share_the_pool() {
        let pool = &test_pool();
        thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    for round in 0..50 {
                        let chunks = 1 + (t * 7 + round) % 23;
                        let hits = AtomicUsize::new(0);
                        pool.dispatch(chunks, 4, &|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(hits.load(Ordering::Relaxed), chunks);
                    }
                });
            }
        });
    }

    #[test]
    fn max_workers_caps_pool_participation() {
        // With max_workers = 1 at most one pool worker joins; the job
        // still completes because the dispatcher always participates.
        let pool = test_pool();
        let hits = AtomicUsize::new(0);
        pool.dispatch(32, 1, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn chunk_panic_propagates_to_dispatcher_and_pool_survives() {
        let pool = test_pool();
        // A panicking chunk must surface on the dispatcher as a normal
        // panic — not a deadlock, not a dead worker, not a dangling job.
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(16, 3, &|c| {
                if c == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        }));
        let payload = result.expect_err("chunk panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("chunk 7"), "wrong payload: {msg}");
        // Every worker survived containment: the pool still drains full
        // jobs afterwards.
        for _ in 0..3 {
            let hits = AtomicUsize::new(0);
            pool.dispatch(32, 3, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 32);
        }
    }

    #[test]
    fn heavy_chunks_complete_before_dispatch_returns() {
        // Chunks that actually compute: the dispatcher must observe every
        // write made by workers (completion is an AcqRel handshake).
        let pool = test_pool();
        let mut out = vec![0u64; 1024];
        let base = out.as_mut_ptr() as usize;
        pool.dispatch(64, 3, &|c| {
            for i in 0..16 {
                // SAFETY: disjoint 16-element bands per chunk index.
                unsafe { *(base as *mut u64).add(c * 16 + i) = (c * 16 + i) as u64 + 1 };
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }
}
