//! Trace generation: walking a layer's loop nest.
//!
//! The generators emit [`TraceOp`]s through a callback (traces for full
//! layers run to tens of millions of ops, so they are never materialized).
//! The binary 3×3 convolution follows the daBNN-style blocking the paper's
//! premise rests on: a tile of output pixels is held in vector registers
//! while the *whole kernel* streams past it, so weight traffic is
//! `tiles × kernel_bytes` and weight loads sit on the critical path
//! (paper Sec. I: "the loads to fetch the weights are in the critical
//! path"). The three modes differ only in how those weights arrive:
//!
//! * [`ConvMode::Baseline`] — channel-packed words loaded through the
//!   caches;
//! * [`ConvMode::SoftwareDecode`] — the compressed stream is decoded by
//!   scalar code into a scratch buffer once per layer, then the baseline
//!   loop runs against the scratch (paper Sec. IV-B: 1.47x slower);
//! * [`ConvMode::HardwareDecode`] — `lddu` arms the decoding unit per
//!   tile and the loop pops packed words with `ldps`.

use crate::config::CpuConfig;
use bitnn::model::{ConvMode, LayerWorkload};

/// Base address of the weight region.
pub const WEIGHT_BASE: u64 = 0x1000_0000;
/// Base address of the activation region.
pub const ACT_BASE: u64 = 0x2000_0000;
/// Base address of the output region.
pub const OUT_BASE: u64 = 0x3000_0000;
/// Base address of the compressed stream.
pub const STREAM_BASE: u64 = 0x4000_0000;
/// Base address of the software decoder's scratch buffer.
pub const SCRATCH_BASE: u64 = 0x5000_0000;

/// One event of the execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Demand load through the cache hierarchy.
    Load {
        /// Byte address.
        addr: u64,
        /// Size in bytes.
        bytes: u32,
    },
    /// Store (write-allocate, fire-and-forget).
    Store {
        /// Byte address.
        addr: u64,
        /// Size in bytes.
        bytes: u32,
    },
    /// `count` vector ops (each one xnor+popcount+accumulate, or the
    /// 8-bit MAC equivalent).
    Vop {
        /// Number of vector instructions.
        count: u32,
    },
    /// Scalar busy-work of a fixed cycle cost (software decoding).
    Scalar {
        /// Cycles consumed.
        cycles: u32,
    },
    /// Configure and arm the decoding unit.
    Lddu {
        /// Stream base address.
        stream_addr: u64,
        /// Compressed stream length in bytes.
        stream_bytes: u64,
        /// Number of bit sequences in the stream.
        num_seqs: u64,
        /// Distinct sequence values in the stream. Repeats hit the unit's
        /// uncompressed table and bypass the Huffman decoder.
        unique_seqs: u64,
        /// Packed channel groups the stream yields (9 words each).
        num_groups: u64,
    },
    /// Pop one packed word from the decoding unit.
    Ldps,
}

/// 64-bit lanes covering `c` channels.
fn lanes64(c: usize) -> u64 {
    c.div_ceil(64) as u64
}

/// Per-layer region bases: `(weights, acts, outputs, stream, scratch)`.
/// Each layer gets a distinct 8 MB window inside each region so layers
/// sharing a machine do not alias in the caches.
fn region_bases(salt: u64) -> (u64, u64, u64, u64, u64) {
    let off = (salt % 32) * 0x80_0000;
    (
        WEIGHT_BASE + off,
        ACT_BASE + off,
        OUT_BASE + off,
        STREAM_BASE + off,
        SCRATCH_BASE + off,
    )
}

/// Compressed stream size for a kernel of `num_seqs` sequences at a given
/// payload compression ratio.
pub fn stream_bytes(num_seqs: u64, compression_ratio: f64) -> u64 {
    ((num_seqs * 9) as f64 / compression_ratio / 8.0).ceil() as u64
}

/// The compressed stream backing one 3×3 layer's kernel: either measured
/// from a real `.bkcm` container (the `simulate --in` path) or synthesized
/// analytically from a compression ratio ([`KernelStream::from_ratio`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStream {
    /// Encoded stream length in bytes.
    pub stream_bytes: u64,
    /// Codewords in the stream (one per kernel channel).
    pub num_seqs: u64,
    /// Distinct sequence values among the codewords. Synthetic streams
    /// assume the worst case (`unique_seqs == num_seqs`); streams measured
    /// from a real container carry the record's dedup bank size.
    pub unique_seqs: u64,
}

impl KernelStream {
    /// Synthesize a stream for `num_seqs` sequences at a payload ratio.
    /// Assumes no repeated sequences (`unique_seqs == num_seqs`).
    pub fn from_ratio(num_seqs: u64, compression_ratio: f64) -> Self {
        KernelStream {
            stream_bytes: stream_bytes(num_seqs, compression_ratio),
            num_seqs,
            unique_seqs: num_seqs,
        }
    }

    /// Effective payload compression ratio of this stream.
    pub fn ratio(&self) -> f64 {
        (self.num_seqs * 9) as f64 / (self.stream_bytes * 8) as f64
    }
}

/// Generate the binary 3×3 convolution trace from an analytic
/// compression ratio (see [`conv3x3_ops_stream`] for real streams).
///
/// `salt` offsets every region's base address so that consecutive layers
/// sharing one machine do not alias in the caches.
///
/// # Panics
///
/// Panics if the workload is not a 3×3 layer.
pub fn conv3x3_ops(
    wl: &LayerWorkload,
    mode: ConvMode,
    compression_ratio: f64,
    cfg: &CpuConfig,
    salt: u64,
    emit: &mut dyn FnMut(TraceOp),
) {
    let stream = KernelStream::from_ratio(wl.num_sequences(), compression_ratio);
    conv3x3_ops_stream(wl, mode, stream, cfg, salt, emit);
}

/// Generate the binary 3×3 convolution trace against an explicit
/// compressed stream — the entry point for container-driven simulation,
/// where `stream` carries the *actual* byte length and sequence count of
/// a `.bkcm` record rather than an analytic estimate.
///
/// # Panics
///
/// Panics if the workload is not a 3×3 layer.
pub fn conv3x3_ops_stream(
    wl: &LayerWorkload,
    mode: ConvMode,
    stream: KernelStream,
    cfg: &CpuConfig,
    salt: u64,
    emit: &mut dyn FnMut(TraceOp),
) {
    assert_eq!((wl.kh, wl.kw), (3, 3), "conv3x3_ops needs a 3x3 layer");
    let lanes = lanes64(wl.in_ch);
    let pixels = (wl.oh * wl.ow) as u64;
    let tile = cfg.pixel_tile as u64;
    let k_filters = wl.out_ch as u64;
    let num_seqs = stream.num_seqs;
    let unique_seqs = stream.unique_seqs.min(num_seqs);
    let num_groups = k_filters * lanes;
    let sbytes = stream.stream_bytes;
    let in_w = (wl.ow * 2 + 2) as u64; // generous input row pitch
    let (w_base, a_base, o_base, s_base, scratch) = region_bases(salt);

    // Software decode: decompress the whole stream into scratch once.
    if mode == ConvMode::SoftwareDecode {
        let groups = num_seqs.div_ceil(64);
        let bytes_per_group = sbytes.div_ceil(groups).max(1) as u32;
        for g in 0..groups {
            emit(TraceOp::Load {
                addr: s_base + g * bytes_per_group as u64,
                bytes: bytes_per_group,
            });
            emit(TraceOp::Scalar {
                cycles: (64 * cfg.cost.sw_decode_cycles_per_seq) as u32,
            });
            for w in 0..9 {
                emit(TraceOp::Store {
                    addr: scratch + (g * 9 + w) * 8,
                    bytes: 8,
                });
            }
        }
    }

    let weight_base = if mode == ConvMode::SoftwareDecode {
        scratch
    } else {
        w_base
    };

    let mut tile_start = 0u64;
    while tile_start < pixels {
        let tile_px = tile.min(pixels - tile_start);
        if mode == ConvMode::HardwareDecode {
            emit(TraceOp::Lddu {
                stream_addr: s_base,
                stream_bytes: sbytes,
                num_seqs,
                unique_seqs,
                num_groups,
            });
        }
        for k in 0..k_filters {
            for cg in 0..lanes {
                // Fetch this (filter, channel-group)'s nine packed words.
                match mode {
                    ConvMode::Baseline | ConvMode::SoftwareDecode => {
                        let base = weight_base + (k * lanes + cg) * 9 * 8;
                        for pos in 0..9u64 {
                            emit(TraceOp::Load {
                                addr: base + pos * 8,
                                bytes: 8,
                            });
                        }
                    }
                    ConvMode::HardwareDecode => {
                        for _ in 0..9 {
                            emit(TraceOp::Ldps);
                        }
                    }
                }
                // Apply them to every pixel of the tile.
                for px in 0..tile_px {
                    let p = tile_start + px;
                    let (oy, ox) = (p / wl.ow as u64, p % wl.ow as u64);
                    for pos in 0..9u64 {
                        let (ky, kx) = (pos / 3, pos % 3);
                        let iy = oy * 2 + ky; // stride folded into pitch
                        let ix = ox * 2 + kx;
                        emit(TraceOp::Load {
                            addr: a_base + ((iy * in_w + ix) * lanes + cg) * 8,
                            bytes: 8,
                        });
                    }
                    emit(TraceOp::Vop { count: 9 });
                }
            }
            // Write the tile's outputs for this filter.
            for px in 0..tile_px {
                emit(TraceOp::Store {
                    addr: o_base + ((tile_start + px) * k_filters + k) * 4,
                    bytes: 4,
                });
            }
        }
        tile_start += tile_px;
    }
}

/// Generate the binary 1×1 convolution trace (never compressed — the
/// paper only compresses 3×3 kernels).
pub fn conv1x1_ops(wl: &LayerWorkload, cfg: &CpuConfig, salt: u64, emit: &mut dyn FnMut(TraceOp)) {
    let lanes = lanes64(wl.in_ch);
    let pixels = (wl.oh * wl.ow) as u64;
    let tile = cfg.pixel_tile as u64;
    let k_filters = wl.out_ch as u64;
    let (w_base, a_base, o_base, _, _) = region_bases(salt);
    let mut tile_start = 0u64;
    while tile_start < pixels {
        let tile_px = tile.min(pixels - tile_start);
        for k in 0..k_filters {
            for cg in 0..lanes {
                emit(TraceOp::Load {
                    addr: w_base + (k * lanes + cg) * 8,
                    bytes: 8,
                });
                for px in 0..tile_px {
                    let p = tile_start + px;
                    emit(TraceOp::Load {
                        addr: a_base + (p * lanes + cg) * 8,
                        bytes: 8,
                    });
                    emit(TraceOp::Vop { count: 1 });
                }
            }
            for px in 0..tile_px {
                emit(TraceOp::Store {
                    addr: o_base + ((tile_start + px) * k_filters + k) * 4,
                    bytes: 4,
                });
            }
        }
        tile_start += tile_px;
    }
}

/// Generate the 8-bit quantized convolution trace (the input layer).
pub fn quant_conv_ops(
    wl: &LayerWorkload,
    cfg: &CpuConfig,
    salt: u64,
    emit: &mut dyn FnMut(TraceOp),
) {
    let pixels = (wl.oh * wl.ow) as u64;
    let tile = cfg.pixel_tile as u64;
    let k_filters = wl.out_ch as u64;
    let wrow = (wl.in_ch * wl.kh * wl.kw) as u64; // bytes (i8 weights)
    let macs_per_vop = 16u64; // 128-bit vector of 8-bit MACs
    let (w_base, a_base, o_base, _, _) = region_bases(salt);
    let mut tile_start = 0u64;
    while tile_start < pixels {
        let tile_px = tile.min(pixels - tile_start);
        for k in 0..k_filters {
            emit(TraceOp::Load {
                addr: w_base + k * wrow,
                bytes: wrow as u32,
            });
            for px in 0..tile_px {
                let p = tile_start + px;
                emit(TraceOp::Load {
                    addr: a_base + p * wrow,
                    bytes: wrow as u32,
                });
                emit(TraceOp::Vop {
                    count: wrow.div_ceil(macs_per_vop) as u32,
                });
            }
            for px in 0..tile_px {
                emit(TraceOp::Store {
                    addr: o_base + ((tile_start + px) * k_filters + k) * 4,
                    bytes: 4,
                });
            }
        }
        tile_start += tile_px;
    }
}

/// Generate the 8-bit fully-connected trace (the output layer): one
/// weight-row stream per output neuron.
pub fn quant_fc_ops(wl: &LayerWorkload, salt: u64, emit: &mut dyn FnMut(TraceOp)) {
    let in_bytes = wl.in_ch as u64; // i8 weights
    let (w_base, a_base, o_base, _, _) = region_bases(salt);
    for o in 0..wl.out_ch as u64 {
        emit(TraceOp::Load {
            addr: w_base + o * in_bytes,
            bytes: in_bytes as u32,
        });
        emit(TraceOp::Load {
            addr: a_base,
            bytes: in_bytes as u32,
        });
        emit(TraceOp::Vop {
            count: in_bytes.div_ceil(16) as u32,
        });
        emit(TraceOp::Store {
            addr: o_base + o * 4,
            bytes: 4,
        });
    }
}

/// Generate an element-wise full-precision pass (batch-norm, RPReLU,
/// sign): load, transform, store, 16 f32 elements per 64-byte line.
pub fn elementwise_ops(elems: u64, salt: u64, emit: &mut dyn FnMut(TraceOp)) {
    let (_, a_base, o_base, _, _) = region_bases(salt);
    let lines = elems.div_ceil(16);
    for l in 0..lines {
        emit(TraceOp::Load {
            addr: a_base + l * 64,
            bytes: 64,
        });
        emit(TraceOp::Vop { count: 4 });
        emit(TraceOp::Store {
            addr: o_base + l * 64,
            bytes: 64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnn::model::OpCategory;

    fn wl3() -> LayerWorkload {
        LayerWorkload {
            name: "t.conv3x3".into(),
            category: OpCategory::Conv3x3,
            in_ch: 64,
            out_ch: 64,
            kh: 3,
            kw: 3,
            oh: 4,
            ow: 4,
            precision_bits: 1,
        }
    }

    fn collect(mode: ConvMode) -> Vec<TraceOp> {
        let cfg = CpuConfig::default();
        let mut v = Vec::new();
        conv3x3_ops(&wl3(), mode, 1.33, &cfg, 0, &mut |op| v.push(op));
        v
    }

    #[test]
    fn baseline_weight_traffic_is_tiles_times_kernel() {
        let ops = collect(ConvMode::Baseline);
        let wloads = ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Load { addr, .. } if *addr >= WEIGHT_BASE && *addr < ACT_BASE))
            .count() as u64;
        let wl = wl3();
        let tiles = (wl.oh * wl.ow).div_ceil(CpuConfig::default().pixel_tile) as u64;
        assert_eq!(wloads, (tiles * wl.out_ch as u64) * 9);
    }

    #[test]
    fn hw_mode_replaces_weight_loads_with_ldps() {
        let ops = collect(ConvMode::HardwareDecode);
        let wloads = ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Load { addr, .. } if *addr >= WEIGHT_BASE && *addr < ACT_BASE))
            .count();
        assert_eq!(wloads, 0, "hardware mode loads no weights through caches");
        let ldps = ops.iter().filter(|op| matches!(op, TraceOp::Ldps)).count() as u64;
        let lddu = ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Lddu { .. }))
            .count() as u64;
        let wl = wl3();
        let tiles = (wl.oh * wl.ow).div_ceil(CpuConfig::default().pixel_tile) as u64;
        assert_eq!(lddu, tiles);
        assert_eq!(ldps, tiles * wl.out_ch as u64 * 9);
        // ldps count per lddu matches the packed words a stream yields.
        let groups = wl.num_sequences().div_ceil(64);
        assert_eq!(ldps / lddu, groups * 9);
    }

    #[test]
    fn sw_mode_prepends_decode_phase() {
        let ops = collect(ConvMode::SoftwareDecode);
        let scalar: u64 = ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Scalar { cycles } => Some(*cycles as u64),
                _ => None,
            })
            .sum();
        let wl = wl3();
        let expect = wl.num_sequences().div_ceil(64)
            * 64
            * CpuConfig::default().cost.sw_decode_cycles_per_seq;
        assert_eq!(scalar, expect);
        // The conv phase then reads from scratch, not the weight region.
        assert!(ops
            .iter()
            .any(|op| matches!(op, TraceOp::Load { addr, .. } if *addr >= SCRATCH_BASE)));
    }

    #[test]
    fn vop_count_equals_macs_over_64() {
        let ops = collect(ConvMode::Baseline);
        let vops: u64 = ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Vop { count } => Some(*count as u64),
                _ => None,
            })
            .sum();
        let wl = wl3();
        assert_eq!(vops, wl.macs() / 64);
    }

    #[test]
    fn all_modes_compute_the_same_work() {
        let base: u64 = collect(ConvMode::Baseline)
            .iter()
            .filter_map(|op| match op {
                TraceOp::Vop { count } => Some(*count as u64),
                _ => None,
            })
            .sum();
        for mode in [ConvMode::SoftwareDecode, ConvMode::HardwareDecode] {
            let v: u64 = collect(mode)
                .iter()
                .filter_map(|op| match op {
                    TraceOp::Vop { count } => Some(*count as u64),
                    _ => None,
                })
                .sum();
            assert_eq!(v, base, "{mode:?} must do the same math");
        }
    }

    #[test]
    fn stream_bytes_shrink_with_ratio() {
        assert_eq!(stream_bytes(4096, 1.0), 4608);
        assert!(stream_bytes(4096, 1.33) < 3600);
        assert!(stream_bytes(4096, 1.33) > 3000);
    }

    #[test]
    fn conv1x1_has_no_position_loop() {
        let cfg = CpuConfig::default();
        let wl = LayerWorkload {
            name: "t.conv1x1".into(),
            category: OpCategory::Conv1x1,
            in_ch: 64,
            out_ch: 32,
            kh: 1,
            kw: 1,
            oh: 4,
            ow: 4,
            precision_bits: 1,
        };
        let mut v = Vec::new();
        conv1x1_ops(&wl, &cfg, 0, &mut |op| v.push(op));
        let vops: u64 = v
            .iter()
            .filter_map(|op| match op {
                TraceOp::Vop { count } => Some(*count as u64),
                _ => None,
            })
            .sum();
        assert_eq!(vops, wl.macs() / 64);
    }

    #[test]
    fn elementwise_scales_with_elems() {
        let mut small = Vec::new();
        elementwise_ops(64, 0, &mut |op| small.push(op));
        let mut big = Vec::new();
        elementwise_ops(640, 0, &mut |op| big.push(op));
        assert_eq!(big.len(), small.len() * 10);
    }
}
