//! The decoding unit (paper Fig. 6): streaming unit + packing unit.
//!
//! Timing model. `lddu` loads the configuration structure (Table III) and
//! arms the unit; from then on the streaming unit fetches the compressed
//! stream from DRAM in input-buffer-sized chunks (256 B, Table IV),
//! bypassing the caches, while the decoder drains the buffer at
//! `decode_per_cycle` sequences per cycle (the banked uncompressed table
//! allows multiple lookups per cycle). The packing unit channel-packs each
//! group of 64 decoded sequences into nine 64-bit words; `ldps` pops the
//! next packed word, stalling the pipeline only if the unit has not
//! produced it yet.
//!
//! The register file bounds how far the unit can run ahead of the
//! consumer; the model tracks the lead and clamps production to the
//! configured capacity.

use crate::config::DecodeUnitConfig;
use crate::mem::Hierarchy;

/// Packed words produced per group: one channel group fills nine lane
/// words (one per 3×3 position). When the layer has 64 or more channels a
/// group is 64 sequences; narrower layers pack fewer sequences per word.
pub const WORDS_PER_GROUP: u64 = 9;

/// Statistics for one armed stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// `lddu` executions.
    pub configs: u64,
    /// `ldps` words served.
    pub words_served: u64,
    /// Cycles the consumer waited on the unit.
    pub consumer_stall_cycles: u64,
    /// Stream bytes fetched from DRAM.
    pub stream_bytes: u64,
    /// Sequences served from the uncompressed table without a Huffman
    /// walk (repeated codewords in a deduplicated stream).
    pub table_hits: u64,
}

#[derive(Debug, Clone)]
struct StreamState {
    /// Cycle decoding may begin (lddu done + config latency).
    start: u64,
    /// Stream base address (Table III's compressed-sequences pointer).
    stream_addr: u64,
    num_seqs: u64,
    /// Distinct sequence values; `num_seqs - unique_seqs` of the decodes
    /// are table hits.
    unique_seqs: u64,
    stream_bytes: u64,
    /// Packed channel groups the stream yields (9 words each).
    num_groups: u64,
    /// Sequences decoded so far.
    decoded: u64,
    /// Completion time of the most recently decoded sequence.
    decode_clock: f64,
    /// Stream chunks fetched so far.
    chunks_fetched: u64,
    /// Completion time of the last chunk fetch.
    last_chunk_done: u64,
    /// Packed words consumed so far.
    words_consumed: u64,
    /// Ready times of groups already decoded (index = group).
    group_ready: Vec<u64>,
}

/// The decoding unit attached to the LSU.
#[derive(Debug, Clone)]
pub struct DecodeUnit {
    cfg: DecodeUnitConfig,
    state: Option<StreamState>,
    stats: UnitStats,
}

impl DecodeUnit {
    /// An idle unit.
    pub fn new(cfg: DecodeUnitConfig) -> Self {
        DecodeUnit {
            cfg,
            state: None,
            stats: UnitStats::default(),
        }
    }

    /// `lddu`: load a configuration and start decoding a stream of
    /// `num_seqs` sequences occupying `stream_bytes` bytes at
    /// `stream_addr`, packed into `num_groups` channel groups of nine
    /// words each. `unique_seqs` is the number of distinct sequence
    /// values — the remaining `num_seqs - unique_seqs` decodes repeat a
    /// value already resident in the uncompressed table and drain at the
    /// faster table-hit rate. Pass `unique_seqs == num_seqs` for a stream
    /// with no measured dedup information.
    ///
    /// Any previously armed stream is discarded (the paper requires the
    /// programmer to configure the unit before use).
    ///
    /// # Panics
    ///
    /// Panics if `num_groups` is zero.
    pub fn lddu(
        &mut self,
        cycle: u64,
        stream_addr: u64,
        stream_bytes: u64,
        num_seqs: u64,
        unique_seqs: u64,
        num_groups: u64,
    ) {
        assert!(num_groups > 0, "a stream must contain at least one group");
        self.stats.configs += 1;
        self.state = Some(StreamState {
            start: cycle + self.cfg.config_latency,
            stream_addr,
            num_seqs,
            unique_seqs: unique_seqs.min(num_seqs),
            stream_bytes,
            num_groups,
            decoded: 0,
            decode_clock: 0.0,
            chunks_fetched: 0,
            last_chunk_done: 0,
            words_consumed: 0,
            group_ready: Vec::new(),
        });
    }

    /// Whether a stream is armed.
    pub fn is_armed(&self) -> bool {
        self.state.is_some()
    }

    /// `ldps`: pop the next packed word. Returns the cycle the destination
    /// register is ready.
    ///
    /// # Panics
    ///
    /// Panics if no stream is armed or the stream is exhausted — both are
    /// programming errors the paper assigns to the programmer ("the
    /// programmer is responsible for setting this unit before using
    /// `ldps`").
    pub fn ldps(&mut self, cycle: u64, mem: &mut Hierarchy) -> u64 {
        let cfg = self.cfg;
        let state = self.state.as_mut().expect("ldps without lddu");
        let group = state.words_consumed / WORDS_PER_GROUP;
        assert!(group < state.num_groups, "ldps past the end of the stream");
        state.words_consumed += 1;
        self.stats.words_served += 1;

        // Decode up to the end of this group if not already done.
        while (state.group_ready.len() as u64) <= group {
            let g = state.group_ready.len() as u64;
            let last_seq = (g + 1) * state.num_seqs / state.num_groups;
            while state.decoded < last_seq {
                // Ensure the chunk holding this sequence is fetched.
                let byte_off = state.decoded * state.stream_bytes / state.num_seqs.max(1);
                let chunk = byte_off / cfg.input_buffer_bytes as u64;
                while state.chunks_fetched <= chunk {
                    let bytes = cfg
                        .input_buffer_bytes
                        .min(state.stream_bytes as usize)
                        .max(1) as u64;
                    let issue = state.start.max(state.last_chunk_done);
                    let addr = state.stream_addr + state.chunks_fetched * bytes;
                    state.last_chunk_done = mem.stream_fetch_at(issue, addr, bytes);
                    self.stats.stream_bytes += bytes;
                    state.chunks_fetched += 1;
                }
                // Decode pace: a cold codeword costs 1/decode_per_cycle,
                // a repeat of a table-resident value drains at the
                // table-hit rate; neither starts before the chunk lands.
                // `num_seqs - unique_seqs` hits are spread evenly across
                // the stream (Bresenham), matching a frequency-skewed
                // stream where repeats interleave with first sightings.
                let hits = state.num_seqs - state.unique_seqs;
                let i = state.decoded;
                let is_hit =
                    (i + 1) * hits / state.num_seqs.max(1) > i * hits / state.num_seqs.max(1);
                let pace = if is_hit {
                    self.stats.table_hits += 1;
                    1.0 / cfg.table_hits_per_cycle
                } else {
                    1.0 / cfg.decode_per_cycle
                };
                let earliest = state.last_chunk_done.max(state.start) as f64;
                state.decode_clock = state.decode_clock.max(earliest) + pace;
                state.decoded += 1;
            }
            state.group_ready.push(state.decode_clock.ceil() as u64);
        }
        let ready = state.group_ready[group as usize];
        if ready > cycle {
            self.stats.consumer_stall_cycles += ready - cycle;
        }
        ready.max(cycle) + 1
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    fn setup() -> (DecodeUnit, Hierarchy) {
        let cfg = CpuConfig::default();
        (DecodeUnit::new(cfg.decode_unit), Hierarchy::new(&cfg))
    }

    #[test]
    fn first_word_waits_for_config_fetch_and_decode() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 1024, 1024, 1024, 16);
        let ready = u.ldps(1, &mut mem);
        // config latency (40) + DRAM chunk fetch (~120+) + 64 seqs at
        // 2/cycle (32) — the first word cannot be early.
        assert!(ready > 150, "first word at {ready}");
    }

    #[test]
    fn later_words_of_same_group_are_free() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 1024, 1024, 1024, 16);
        let first = u.ldps(0, &mut mem);
        // Words 2..9 of group 0 are already in the register file.
        for _ in 1..9 {
            let r = u.ldps(first, &mut mem);
            assert_eq!(r, first + 1);
        }
    }

    #[test]
    fn consumer_running_behind_never_stalls() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 1024, 1024, 1024, 16);
        let mut cycle = 100_000; // consumer arrives very late
        for _ in 0..9 * (1024 / 64) {
            let r = u.ldps(cycle, &mut mem);
            assert_eq!(r, cycle + 1, "late consumer gets data immediately");
            cycle = r;
        }
        assert_eq!(u.stats().consumer_stall_cycles, 0);
    }

    #[test]
    fn stall_cycles_accumulate_for_eager_consumer() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 4096, 4096, 4096, 64);
        let mut cycle = 0;
        for _ in 0..9 * 4 {
            cycle = u.ldps(cycle, &mut mem);
        }
        assert!(u.stats().consumer_stall_cycles > 0);
    }

    #[test]
    fn stream_bytes_fetched_in_chunks() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 1000, 1024, 1024, 16);
        // Consume everything.
        let mut cycle = 0;
        for _ in 0..9 * (1024 / 64) {
            cycle = u.ldps(cycle, &mut mem);
        }
        // Fetched in 256-byte chunks covering the 1000-byte stream.
        assert!(u.stats().stream_bytes >= 1000);
        assert_eq!(u.stats().stream_bytes % 256, 0);
    }

    #[test]
    #[should_panic(expected = "ldps without lddu")]
    fn ldps_unconfigured_panics() {
        let (mut u, mut mem) = setup();
        u.ldps(0, &mut mem);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn ldps_past_stream_panics() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 72, 64, 64, 1); // one group -> 9 words
        for _ in 0..9 {
            u.ldps(0, &mut mem);
        }
        u.ldps(0, &mut mem);
    }

    #[test]
    fn rearming_resets_the_stream() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 72, 64, 64, 1);
        for _ in 0..9 {
            u.ldps(0, &mut mem);
        }
        u.lddu(1000, 0x4000_0000, 72, 64, 64, 1);
        // A fresh 9 words are available again.
        for _ in 0..9 {
            u.ldps(1000, &mut mem);
        }
        assert_eq!(u.stats().configs, 2);
        assert_eq!(u.stats().words_served, 18);
    }

    /// Drain a whole stream with an eager consumer and report
    /// (stall cycles, table hits).
    fn drain(num_seqs: u64, unique_seqs: u64) -> (u64, u64) {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 4096, num_seqs, unique_seqs, 64);
        let mut cycle = 0;
        for _ in 0..9 * 64 {
            cycle = u.ldps(cycle, &mut mem);
        }
        (u.stats().consumer_stall_cycles, u.stats().table_hits)
    }

    #[test]
    fn no_dedup_means_no_table_hits() {
        let (_, hits) = drain(4096, 4096);
        assert_eq!(hits, 0);
    }

    #[test]
    fn table_hits_count_the_repeats() {
        let (_, hits) = drain(4096, 1000);
        assert_eq!(hits, 4096 - 1000);
    }

    #[test]
    fn dedup_reduces_consumer_stalls() {
        let (stall_cold, _) = drain(4096, 4096);
        let (stall_dedup, _) = drain(4096, 512);
        assert!(
            stall_dedup < stall_cold,
            "dedup {stall_dedup} must stall less than cold {stall_cold}"
        );
    }

    #[test]
    fn unique_seqs_is_clamped_to_num_seqs() {
        let (mut u, mut mem) = setup();
        u.lddu(0, 0x4000_0000, 72, 64, 9999, 1);
        for _ in 0..9 {
            u.ldps(0, &mut mem);
        }
        assert_eq!(u.stats().table_hits, 0);
    }
}
