//! Layer and model runners: the numbers behind Table I's execution-time
//! column and the paper's speedup claims.

use crate::config::CpuConfig;
use crate::exec::{ExecStats, Machine};
use crate::mem::MemStats;
use crate::trace::{self, KernelStream};
use bitnn::model::{ConvMode, LayerWorkload, OpCategory};

/// Which kernel representation the 3×3 convolutions use. Re-exported
/// alias of [`bitnn::model::ConvMode`] for callers of this crate.
pub type Mode = ConvMode;

/// Result of simulating one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// Layer name from the workload.
    pub name: String,
    /// Table I category.
    pub category: OpCategory,
    /// Simulated cycles.
    pub cycles: u64,
    /// Pipeline statistics.
    pub exec: ExecStats,
    /// Memory statistics.
    pub mem: MemStats,
}

/// Simulate a single layer on a cold machine.
///
/// `compression_ratio` is the payload compression of this layer's kernel
/// (ignored for `Baseline` weight fetch sizing of non-3×3 layers).
pub fn run_workload(
    cfg: &CpuConfig,
    wl: &LayerWorkload,
    mode: Mode,
    compression_ratio: f64,
) -> LayerStats {
    let mut machine = Machine::new(*cfg);
    run_workload_on(&mut machine, wl, mode, compression_ratio)
}

/// Simulate a single layer on an existing machine (keeps caches warm
/// across layers when called in sequence).
pub fn run_workload_on(
    machine: &mut Machine,
    wl: &LayerWorkload,
    mode: Mode,
    compression_ratio: f64,
) -> LayerStats {
    run_workload_salted(machine, wl, mode, compression_ratio, 0)
}

/// [`run_workload_on`] with an explicit address salt so consecutive
/// layers occupy distinct memory regions.
pub fn run_workload_salted(
    machine: &mut Machine,
    wl: &LayerWorkload,
    mode: Mode,
    compression_ratio: f64,
    salt: u64,
) -> LayerStats {
    let stream = KernelStream::from_ratio(wl.num_sequences(), compression_ratio);
    run_workload_stream_salted(machine, wl, mode, stream, salt)
}

/// [`run_workload_salted`] against an explicit compressed stream (real
/// byte length and sequence count from a `.bkcm` record) instead of an
/// analytic compression ratio. Non-3×3 workloads ignore the stream.
pub fn run_workload_stream_salted(
    machine: &mut Machine,
    wl: &LayerWorkload,
    mode: Mode,
    stream: KernelStream,
    salt: u64,
) -> LayerStats {
    let cfg = *machine.config();
    let start_cycles = machine.cycle();
    let start_mem = machine.mem_stats();
    {
        let mut emit = |op| machine.exec(op);
        match wl.category {
            OpCategory::Conv3x3 => {
                trace::conv3x3_ops_stream(wl, mode, stream, &cfg, salt, &mut emit)
            }
            OpCategory::Conv1x1 => trace::conv1x1_ops(wl, &cfg, salt, &mut emit),
            OpCategory::InputLayer => trace::quant_conv_ops(wl, &cfg, salt, &mut emit),
            OpCategory::OutputLayer => trace::quant_fc_ops(wl, salt, &mut emit),
            OpCategory::Others => {
                trace::elementwise_ops((wl.out_ch * wl.oh * wl.ow) as u64, salt, &mut emit)
            }
        }
    }
    let exec = machine.stats();
    let mem = machine.mem_stats();
    LayerStats {
        name: wl.name.clone(),
        category: wl.category,
        cycles: machine.cycle() - start_cycles,
        exec,
        mem: MemStats {
            l1_hits: mem.l1_hits - start_mem.l1_hits,
            l2_hits: mem.l2_hits - start_mem.l2_hits,
            dram_accesses: mem.dram_accesses - start_mem.dram_accesses,
            dram_bytes: mem.dram_bytes - start_mem.dram_bytes,
            prefetch_covered: mem.prefetch_covered - start_mem.prefetch_covered,
        },
    }
}

/// Result of simulating a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRun {
    /// Per-layer results (including synthesized "Others" passes).
    pub layers: Vec<LayerStats>,
    /// Total cycles.
    pub total_cycles: u64,
    /// Decoding-unit statistics accumulated over the whole run (all
    /// zeros outside `HardwareDecode` mode).
    pub unit: crate::decode_unit::UnitStats,
}

impl ModelRun {
    /// Cycles attributed to one Table I category.
    pub fn category_cycles(&self, cat: OpCategory) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.category == cat)
            .map(|l| l.cycles)
            .sum()
    }

    /// Percentage of total time in one category (Table I's execution-time
    /// column).
    pub fn category_pct(&self, cat: OpCategory) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.category_cycles(cat) as f64 / self.total_cycles as f64 * 100.0
        }
    }

    /// Render the execution-time column of Table I.
    pub fn to_table(&self) -> String {
        let mut s = String::from("Operation     Execution time (%)\n");
        for c in OpCategory::ALL {
            s.push_str(&format!(
                "{:<13} {:>17.1}\n",
                c.label(),
                self.category_pct(c)
            ));
        }
        s
    }
}

/// Simulate all layers of a model.
///
/// `mode` applies to the 3×3 convolutions only (the paper compresses
/// nothing else); `ratios` supplies the per-3×3-layer compression ratio
/// (cycled if shorter than the number of 3×3 layers; pass `&[1.0]` for
/// baseline runs). For every convolution an "Others" element-wise pass
/// (batch-norm + RPReLU + sign) over its output is synthesized, matching
/// the ReActNet block structure.
pub fn run_model(
    cfg: &CpuConfig,
    workloads: &[LayerWorkload],
    mode: Mode,
    ratios: &[f64],
) -> ModelRun {
    assert!(!ratios.is_empty(), "need at least one compression ratio");
    let streams: Vec<KernelStream> = workloads
        .iter()
        .filter(|wl| wl.category == OpCategory::Conv3x3)
        .enumerate()
        .map(|(i, wl)| KernelStream::from_ratio(wl.num_sequences(), ratios[i % ratios.len()]))
        .collect();
    run_model_streams(cfg, workloads, mode, &streams)
}

/// Simulate all layers of a model against *real* compressed streams: one
/// [`KernelStream`] per 3×3 convolution, in layer order, carrying the
/// actual byte length and sequence count of the corresponding `.bkcm`
/// record. This is what `bnnkc simulate --in model.bkcm` runs, so the
/// reported speedup and energy correspond to a concrete compressed model
/// rather than a synthetic ratio.
///
/// # Panics
///
/// Panics if `streams.len()` differs from the number of 3×3 workloads.
pub fn run_model_streams(
    cfg: &CpuConfig,
    workloads: &[LayerWorkload],
    mode: Mode,
    streams: &[KernelStream],
) -> ModelRun {
    let conv3_count = workloads
        .iter()
        .filter(|wl| wl.category == OpCategory::Conv3x3)
        .count();
    assert_eq!(
        streams.len(),
        conv3_count,
        "need one stream per 3x3 layer ({conv3_count}), got {}",
        streams.len()
    );
    let mut machine = Machine::new(*cfg);
    let mut layers = Vec::new();
    let mut conv3_idx = 0usize;
    for (salt, wl) in workloads.iter().enumerate() {
        let stream = if wl.category == OpCategory::Conv3x3 {
            let s = streams[conv3_idx];
            conv3_idx += 1;
            s
        } else {
            KernelStream::from_ratio(wl.num_sequences(), 1.0)
        };
        layers.push(run_workload_stream_salted(
            &mut machine,
            wl,
            mode,
            stream,
            salt as u64,
        ));
        // Post-conv element-wise work (BN + bias + RPReLU + next sign).
        if matches!(wl.category, OpCategory::Conv3x3 | OpCategory::Conv1x1) {
            let others = LayerWorkload {
                name: format!("{}.others", wl.name),
                category: OpCategory::Others,
                in_ch: wl.out_ch,
                out_ch: wl.out_ch,
                kh: 1,
                kw: 1,
                oh: wl.oh,
                ow: wl.ow,
                precision_bits: 32,
            };
            layers.push(run_workload_salted(
                &mut machine,
                &others,
                mode,
                1.0,
                salt as u64,
            ));
        }
    }
    let total_cycles = layers.iter().map(|l| l.cycles).sum();
    ModelRun {
        layers,
        total_cycles,
        unit: machine.unit_stats(),
    }
}

/// Simulate every layer of a model-graph IR spec against real compressed
/// streams: the workloads are derived from the graph's shape inference
/// ([`bitnn::graph::GraphSpec::workloads`]), one [`KernelStream`] per
/// binary 3×3 convolution in topological order. This is what
/// `bnnkc simulate --in model.bkcm` runs for v2 containers, so any
/// architecture the IR expresses — not just ReActNet — simulates without
/// code changes.
///
/// # Errors
///
/// Returns a description if the spec does not validate.
///
/// # Panics
///
/// Panics if `streams.len()` differs from the spec's 3×3 conv count.
pub fn run_spec_streams(
    cfg: &CpuConfig,
    spec: &bitnn::graph::GraphSpec,
    mode: Mode,
    streams: &[KernelStream],
) -> std::result::Result<ModelRun, String> {
    spec.validate().map_err(|e| e.to_string())?;
    Ok(run_model_streams(cfg, &spec.workloads(), mode, streams))
}

/// A baseline-vs-scheme comparison (the paper's headline numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// Scheme cycles.
    pub scheme_cycles: u64,
}

impl Speedup {
    /// `baseline / scheme`: > 1 means the scheme is faster.
    pub fn factor(&self) -> f64 {
        self.baseline_cycles as f64 / self.scheme_cycles as f64
    }
}

/// Run the model in `Baseline` and `mode`, returning the speedup.
pub fn compare_modes(
    cfg: &CpuConfig,
    workloads: &[LayerWorkload],
    mode: Mode,
    ratios: &[f64],
) -> Speedup {
    let base = run_model(cfg, workloads, Mode::Baseline, &[1.0]);
    let scheme = run_model(cfg, workloads, mode, ratios);
    Speedup {
        baseline_cycles: base.total_cycles,
        scheme_cycles: scheme.total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnn::model::ReActNet;

    fn small_conv3() -> LayerWorkload {
        LayerWorkload {
            name: "t.conv3x3".into(),
            category: OpCategory::Conv3x3,
            in_ch: 128,
            out_ch: 128,
            kh: 3,
            kw: 3,
            oh: 8,
            ow: 8,
            precision_bits: 1,
        }
    }

    /// A layer whose kernel (512*512*9 bits = 295 KB) exceeds the 256 KB
    /// L2, so baseline weight fetches stream from DRAM on every tile —
    /// the regime the paper's scheme targets.
    fn weight_bound_conv3() -> LayerWorkload {
        LayerWorkload {
            name: "big.conv3x3".into(),
            category: OpCategory::Conv3x3,
            in_ch: 512,
            out_ch: 512,
            kh: 3,
            kw: 3,
            oh: 4,
            ow: 4,
            precision_bits: 1,
        }
    }

    #[test]
    fn hardware_beats_baseline_on_weight_bound_layers() {
        let cfg = CpuConfig::default();
        let wl = weight_bound_conv3();
        let base = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        let hw = run_workload(&cfg, &wl, Mode::HardwareDecode, 1.33);
        assert!(
            hw.cycles < base.cycles,
            "hw {} vs base {}",
            hw.cycles,
            base.cycles
        );
    }

    #[test]
    fn hardware_gains_little_on_cache_resident_kernels() {
        // Crossover: a 128-channel kernel (18 KB) lives in L1/L2, so the
        // baseline pays almost nothing for weights and the decode unit's
        // pace bounds the hardware mode.
        let cfg = CpuConfig::default();
        let wl = small_conv3();
        let base = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        let hw = run_workload(&cfg, &wl, Mode::HardwareDecode, 1.33);
        let factor = base.cycles as f64 / hw.cycles as f64;
        assert!(
            (0.5..1.2).contains(&factor),
            "cache-resident speedup should be ~neutral, got {factor}"
        );
    }

    #[test]
    fn software_decode_is_slower_than_baseline() {
        let cfg = CpuConfig::default();
        let wl = small_conv3();
        let base = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        let sw = run_workload(&cfg, &wl, Mode::SoftwareDecode, 1.33);
        assert!(
            sw.cycles > base.cycles,
            "sw {} vs base {}",
            sw.cycles,
            base.cycles
        );
    }

    #[test]
    fn hw_moves_fewer_dram_bytes() {
        let cfg = CpuConfig::default();
        let wl = small_conv3();
        let base = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        let hw = run_workload(&cfg, &wl, Mode::HardwareDecode, 1.33);
        assert!(
            hw.mem.dram_bytes < base.mem.dram_bytes,
            "hw {} vs base {}",
            hw.mem.dram_bytes,
            base.mem.dram_bytes
        );
    }

    #[test]
    fn model_run_covers_all_categories() {
        let cfg = CpuConfig::default();
        let model = ReActNet::tiny(3);
        let run = run_model(&cfg, &model.workloads(), Mode::Baseline, &[1.0]);
        for c in OpCategory::ALL {
            assert!(run.category_cycles(c) > 0, "category {c} has no cycles");
        }
        let pct_sum: f64 = OpCategory::ALL.iter().map(|&c| run.category_pct(c)).sum();
        assert!((pct_sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn conv3x3_dominates_execution_time() {
        // Table I: 3x3 convolutions are ~2/3 of the time. The tiny model
        // is not the paper's geometry, so just require dominance.
        let cfg = CpuConfig::default();
        let model = ReActNet::tiny(3);
        let run = run_model(&cfg, &model.workloads(), Mode::Baseline, &[1.0]);
        let conv3 = run.category_pct(OpCategory::Conv3x3);
        for c in [OpCategory::Conv1x1, OpCategory::Others] {
            assert!(conv3 > run.category_pct(c), "conv3x3 must dominate {c}");
        }
    }

    #[test]
    fn table_renders_every_row() {
        let cfg = CpuConfig::default();
        let model = ReActNet::tiny(3);
        let run = run_model(&cfg, &model.workloads(), Mode::Baseline, &[1.0]);
        let t = run.to_table();
        for c in OpCategory::ALL {
            assert!(t.contains(c.label()));
        }
    }

    #[test]
    fn compare_modes_reports_speedup() {
        let cfg = CpuConfig::default();
        let model = ReActNet::tiny(3);
        let wls = model.workloads();
        let s = compare_modes(&cfg, &wls, Mode::HardwareDecode, &[1.33]);
        assert!(s.baseline_cycles > 0 && s.scheme_cycles > 0);
        assert!(
            s.factor() > 0.5 && s.factor() < 3.0,
            "factor {}",
            s.factor()
        );
    }

    #[test]
    #[should_panic(expected = "at least one compression ratio")]
    fn empty_ratios_panics() {
        let cfg = CpuConfig::default();
        let model = ReActNet::tiny(3);
        run_model(&cfg, &model.workloads(), Mode::Baseline, &[]);
    }

    #[test]
    fn stream_run_matches_ratio_run_for_analytic_streams() {
        // run_model is now a thin wrapper over run_model_streams; feeding
        // the analytic streams back in must reproduce it exactly.
        let cfg = CpuConfig::default();
        let wls = ReActNet::tiny(3).workloads();
        let streams: Vec<KernelStream> = wls
            .iter()
            .filter(|w| w.category == OpCategory::Conv3x3)
            .map(|w| KernelStream::from_ratio(w.num_sequences(), 1.33))
            .collect();
        for mode in [Mode::Baseline, Mode::SoftwareDecode, Mode::HardwareDecode] {
            let via_ratio = run_model(&cfg, &wls, mode, &[1.33]);
            let via_stream = run_model_streams(&cfg, &wls, mode, &streams);
            assert_eq!(via_ratio.total_cycles, via_stream.total_cycles, "{mode:?}");
        }
    }

    #[test]
    fn real_stream_sizes_shift_hardware_cycles() {
        // A measurably smaller real stream must cost fewer hardware-mode
        // cycles than a bloated one on a weight-bound layer.
        let cfg = CpuConfig::default();
        let wl = weight_bound_conv3();
        let seqs = wl.num_sequences();
        let small = KernelStream {
            stream_bytes: seqs * 9 / 8 / 2,
            num_seqs: seqs,
            unique_seqs: seqs,
        };
        let large = KernelStream {
            stream_bytes: seqs * 9 / 8,
            num_seqs: seqs,
            unique_seqs: seqs,
        };
        let run_with = |s: KernelStream| {
            let mut machine = crate::exec::Machine::new(cfg);
            run_workload_stream_salted(&mut machine, &wl, Mode::HardwareDecode, s, 0).cycles
        };
        assert!(run_with(small) < run_with(large));
        assert!((small.ratio() - 2.0).abs() < 0.1, "ratio {}", small.ratio());
    }

    #[test]
    fn dedup_stream_runs_no_slower_in_hardware_mode() {
        // A stream carrying a real dedup bank (unique < total) drains the
        // decode unit faster; end-to-end cycles must not regress, and on a
        // weight-bound layer they must strictly improve.
        let cfg = CpuConfig::default();
        let wl = weight_bound_conv3();
        let seqs = wl.num_sequences();
        let cold = KernelStream::from_ratio(seqs, 1.33);
        let dedup = KernelStream {
            unique_seqs: seqs / 8,
            ..cold
        };
        let run_with = |s: KernelStream| {
            let mut machine = crate::exec::Machine::new(cfg);
            run_workload_stream_salted(&mut machine, &wl, Mode::HardwareDecode, s, 0).cycles
        };
        assert!(
            run_with(dedup) < run_with(cold),
            "dedup {} vs cold {}",
            run_with(dedup),
            run_with(cold)
        );
    }

    #[test]
    fn spec_streams_match_workload_streams_across_archs() {
        use bitnn::graph::arch::{build_spec, Arch};
        let cfg = CpuConfig::default();
        for arch in Arch::ALL {
            let spec = build_spec(arch, 0.0625, 32).unwrap();
            let streams: Vec<KernelStream> = spec
                .workloads()
                .iter()
                .filter(|w| w.category == OpCategory::Conv3x3)
                .map(|w| KernelStream::from_ratio(w.num_sequences(), 1.33))
                .collect();
            let via_spec = run_spec_streams(&cfg, &spec, Mode::HardwareDecode, &streams).unwrap();
            let via_wls =
                run_model_streams(&cfg, &spec.workloads(), Mode::HardwareDecode, &streams);
            assert_eq!(via_spec.total_cycles, via_wls.total_cycles, "{arch}");
            assert!(via_spec.total_cycles > 0);
        }
    }

    #[test]
    #[should_panic(expected = "one stream per 3x3 layer")]
    fn stream_count_mismatch_panics() {
        let cfg = CpuConfig::default();
        let wls = ReActNet::tiny(3).workloads();
        run_model_streams(&cfg, &wls, Mode::HardwareDecode, &[]);
    }

    #[test]
    fn warm_machine_accumulates_but_layer_stats_are_differential() {
        let cfg = CpuConfig::default();
        let mut machine = crate::exec::Machine::new(cfg);
        let wl = small_conv3();
        let first = run_workload_salted(&mut machine, &wl, Mode::Baseline, 1.0, 0);
        let second = run_workload_salted(&mut machine, &wl, Mode::Baseline, 1.0, 0);
        // Same region re-run: the second pass hits warm caches.
        assert!(second.cycles <= first.cycles);
        assert!(second.mem.dram_bytes <= first.mem.dram_bytes);
        // Machine cycle is cumulative.
        assert_eq!(machine.cycle(), first.cycles + second.cycles);
    }

    #[test]
    fn salted_layers_do_not_share_cache_lines() {
        let cfg = CpuConfig::default();
        let mut machine = crate::exec::Machine::new(cfg);
        let wl = small_conv3();
        let first = run_workload_salted(&mut machine, &wl, Mode::Baseline, 1.0, 0);
        // A different salt means cold weights again: DRAM traffic returns.
        let other = run_workload_salted(&mut machine, &wl, Mode::Baseline, 1.0, 1);
        assert!(
            other.mem.dram_bytes * 2 > first.mem.dram_bytes,
            "salted layer should be mostly cold: {} vs {}",
            other.mem.dram_bytes,
            first.mem.dram_bytes
        );
    }

    #[test]
    fn others_category_workload_runs() {
        let cfg = CpuConfig::default();
        let wl = LayerWorkload {
            name: "bn".into(),
            category: OpCategory::Others,
            in_ch: 8,
            out_ch: 8,
            kh: 1,
            kw: 1,
            oh: 8,
            ow: 8,
            precision_bits: 32,
        };
        let st = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        assert!(st.cycles > 0);
        assert_eq!(st.category, OpCategory::Others);
    }
}
