//! # simcpu — cycle-approximate CPU + decoding-unit model
//!
//! The hardware substrate of the kernel-compression study: the paper
//! extends an ARM A53's load–store unit with a *decoding unit* that
//! streams, decompresses, and channel-packs encoded bit sequences, driven
//! by two new instructions (`lddu`, `ldps`), and evaluates it in gem5.
//! This crate replaces that toolchain with a trace-driven,
//! cycle-approximate model:
//!
//! * [`mem`] — set-associative L1/L2 caches (LRU, write-back), a
//!   bandwidth/latency DRAM model with a streaming prefetcher;
//! * [`exec`] — an in-order, dual-issue execution model with a small
//!   miss-queue (MSHR) budget and load-to-use stalls;
//! * [`decode_unit`] — the paper's streaming + packing unit (Fig. 6):
//!   background fetch of the compressed stream, table-driven decode at a
//!   configurable rate, a bounded register file, and `lddu`/`ldps`
//!   semantics;
//! * [`trace`] — generators that walk a convolution's loop nest in the
//!   three modes the paper compares: channel-packed baseline, software
//!   decoding (1.47x slower), and hardware decoding (1.35x faster);
//! * [`run`] — per-layer and whole-model runners that produce the numbers
//!   behind Table I's execution-time column and the speedup claims.
//!
//! Everything is parameterized by [`config::CpuConfig`], whose defaults
//! mirror paper Table IV.
//!
//! # Quick example
//!
//! ```
//! use simcpu::config::CpuConfig;
//! use simcpu::run::{run_workload, Mode};
//! use bitnn::model::ReActNet;
//!
//! let model = ReActNet::tiny(7);
//! let workloads = model.workloads();
//! let cfg = CpuConfig::default();
//! let base = run_workload(&cfg, &workloads[1], Mode::Baseline, 1.0);
//! assert!(base.cycles > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod decode_unit;
pub mod energy;
pub mod exec;
pub mod mem;
pub mod run;
pub mod trace;

pub use config::{CacheConfig, CpuConfig, DecodeUnitConfig, DramConfig};
pub use run::{run_workload, LayerStats, Mode};
