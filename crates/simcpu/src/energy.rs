//! Energy accounting (extension experiment).
//!
//! The paper motivates kernel compression with edge devices but reports
//! only performance and storage. Memory traffic dominates energy on edge
//! SoCs, so the same statistics the simulator already collects support a
//! first-order energy estimate with published per-access costs
//! (Horowitz, ISSCC'14-style numbers at ~45 nm, in picojoules):
//!
//! * DRAM: ~20 pJ/byte,
//! * L2: ~1.2 pJ/byte,
//! * L1: ~0.6 pJ/byte,
//! * vector ALU op: ~2 pJ,
//! * decoding unit: table lookup + shift network per sequence, ~1 pJ.
//!
//! Absolute numbers are indicative only; the *ratio* between modes is the
//! experiment.

use crate::exec::ExecStats;
use crate::mem::MemStats;
use serde::{Deserialize, Serialize};

/// Per-event energy costs in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Per byte moved over the DRAM channel.
    pub dram_pj_per_byte: f64,
    /// Per byte served from L2.
    pub l2_pj_per_byte: f64,
    /// Per byte served from L1.
    pub l1_pj_per_byte: f64,
    /// Per vector/scalar issue slot.
    pub op_pj: f64,
    /// Per sequence decoded by the hardware unit.
    pub decode_pj_per_seq: f64,
    /// Static/leakage power in pJ per cycle (whole core).
    pub static_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 20.0,
            l2_pj_per_byte: 1.2,
            l1_pj_per_byte: 0.6,
            op_pj: 2.0,
            decode_pj_per_seq: 1.0,
            static_pj_per_cycle: 5.0,
        }
    }
}

/// An energy estimate broken down by component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM transfer energy (µJ).
    pub dram_uj: f64,
    /// Cache access energy (µJ).
    pub cache_uj: f64,
    /// Compute energy (µJ).
    pub compute_uj: f64,
    /// Decoding-unit energy (µJ).
    pub decoder_uj: f64,
    /// Static energy over the run time (µJ).
    pub static_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.dram_uj + self.cache_uj + self.compute_uj + self.decoder_uj + self.static_uj
    }
}

impl EnergyModel {
    /// Estimate energy from a run's statistics. `decoded_seqs` is the
    /// number of sequences the decoding unit produced (0 for baseline
    /// and software modes); line size converts hit counts to bytes.
    pub fn estimate(
        &self,
        exec: &ExecStats,
        mem: &MemStats,
        decoded_seqs: u64,
        line_bytes: u64,
    ) -> EnergyBreakdown {
        let pj_to_uj = 1e-6;
        EnergyBreakdown {
            dram_uj: mem.dram_bytes as f64 * self.dram_pj_per_byte * pj_to_uj,
            cache_uj: ((mem.l1_hits * line_bytes) as f64 * self.l1_pj_per_byte
                + (mem.l2_hits * line_bytes) as f64 * self.l2_pj_per_byte)
                * pj_to_uj,
            compute_uj: exec.ops as f64 * self.op_pj * pj_to_uj,
            decoder_uj: decoded_seqs as f64 * self.decode_pj_per_seq * pj_to_uj,
            static_uj: exec.cycles as f64 * self.static_pj_per_cycle * pj_to_uj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(ops: u64, cycles: u64) -> ExecStats {
        ExecStats {
            cycles,
            ops,
            ..ExecStats::default()
        }
    }

    #[test]
    fn dram_dominates_for_traffic_heavy_runs() {
        let m = EnergyModel::default();
        let mem = MemStats {
            dram_bytes: 1_000_000,
            ..MemStats::default()
        };
        let e = m.estimate(&exec(1000, 10_000), &mem, 0, 64);
        assert!(e.dram_uj > e.compute_uj);
        assert!(e.dram_uj > e.static_uj);
        assert!((e.dram_uj - 20.0).abs() < 1e-9);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let m = EnergyModel::default();
        let mem = MemStats {
            dram_bytes: 1000,
            l1_hits: 10,
            l2_hits: 5,
            ..MemStats::default()
        };
        let e = m.estimate(&exec(100, 1000), &mem, 50, 64);
        let sum = e.dram_uj + e.cache_uj + e.compute_uj + e.decoder_uj + e.static_uj;
        assert!((e.total_uj() - sum).abs() < 1e-12);
        assert!(e.decoder_uj > 0.0);
    }

    #[test]
    fn zero_stats_zero_energy() {
        let m = EnergyModel::default();
        let e = m.estimate(&ExecStats::default(), &MemStats::default(), 0, 64);
        assert_eq!(e.total_uj(), 0.0);
    }

    #[test]
    fn traffic_reduction_translates_to_energy() {
        // The experiment's point: cutting DRAM bytes by 1.33x cuts the
        // memory energy by the same factor.
        let m = EnergyModel::default();
        let base = m.estimate(
            &exec(0, 0),
            &MemStats {
                dram_bytes: 133,
                ..MemStats::default()
            },
            0,
            64,
        );
        let hw = m.estimate(
            &exec(0, 0),
            &MemStats {
                dram_bytes: 100,
                ..MemStats::default()
            },
            0,
            64,
        );
        assert!((base.dram_uj / hw.dram_uj - 1.33).abs() < 1e-9);
    }
}
