//! L1 → L2 → DRAM with a next-line streaming prefetcher.

use crate::config::CpuConfig;
use crate::mem::{Cache, Dram};
use std::collections::HashMap;

/// Aggregate memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses that hit in L2.
    pub l2_hits: u64,
    /// Accesses that went to DRAM.
    pub dram_accesses: u64,
    /// Bytes moved over the DRAM channel (demand + prefetch + streams).
    pub dram_bytes: u64,
    /// Misses that were covered by an in-flight or completed prefetch.
    pub prefetch_covered: u64,
}

/// The demand-load path of the memory system.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    dram: Dram,
    line_bytes: u64,
    prefetch_degree: usize,
    /// In-flight / completed prefetched lines: line -> ready cycle.
    prefetched: HashMap<u64, u64>,
    /// Last line accessed per 4 KB region, to detect streams.
    last_line: Option<u64>,
    stats: MemStats,
}

impl Hierarchy {
    /// Build from the CPU configuration.
    pub fn new(cfg: &CpuConfig) -> Self {
        Hierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg.dram),
            line_bytes: cfg.l1.line_bytes as u64,
            prefetch_degree: cfg.cost.prefetch_degree,
            prefetched: HashMap::new(),
            last_line: None,
            stats: MemStats::default(),
        }
    }

    /// Load `bytes` starting at `addr` at time `cycle`; returns the cycle
    /// the data is available to the pipeline. Multi-line requests pay for
    /// each line.
    pub fn load_at(&mut self, cycle: u64, addr: u64, bytes: u64) -> u64 {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.line_bytes;
        let mut done = cycle;
        for line in first..=last {
            done = done.max(self.load_line(cycle, line));
        }
        done
    }

    fn load_line(&mut self, cycle: u64, line: u64) -> u64 {
        let addr = line * self.line_bytes;
        let l1_lat = self.l1.config().hit_latency;
        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return cycle + l1_lat;
        }
        // L1 miss: was it prefetched?
        if let Some(ready) = self.prefetched.remove(&line) {
            self.stats.prefetch_covered += 1;
            self.maybe_prefetch(line, ready);
            self.l2.access(addr); // keep L2 contents coherent-ish
            return cycle.max(ready) + l1_lat;
        }
        let l2_lat = self.l2.config().hit_latency;
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            self.maybe_prefetch(line, cycle + l2_lat);
            return cycle + l2_lat;
        }
        // DRAM.
        self.stats.dram_accesses += 1;
        self.stats.dram_bytes += self.line_bytes;
        let done = self.dram.access_at(cycle + l2_lat, self.line_bytes);
        self.maybe_prefetch(line, done);
        done
    }

    /// Next-line prefetch on detected forward streams.
    fn maybe_prefetch(&mut self, line: u64, trigger_done: u64) {
        let is_stream = matches!(self.last_line, Some(prev) if line == prev + 1 || line == prev);
        self.last_line = Some(line);
        if !is_stream || self.prefetch_degree == 0 {
            return;
        }
        for d in 1..=self.prefetch_degree as u64 {
            let next = line + d;
            let next_addr = next * self.line_bytes;
            if self.prefetched.contains_key(&next)
                || self.l1.contains(next_addr)
                || self.l2.contains(next_addr)
            {
                continue;
            }
            self.stats.dram_bytes += self.line_bytes;
            let ready = self.dram.access_at(trigger_done, self.line_bytes);
            self.prefetched.insert(next, ready);
        }
    }

    /// Model a store: write-allocate into L1, cost folded into issue slots
    /// (write-back traffic is not separately modeled).
    pub fn store_at(&mut self, _cycle: u64, addr: u64) {
        self.l1.access(addr);
    }

    /// Stream transfer for the decoding unit's fetch engine. The request
    /// goes through L2 (the unit sits on the LSU behind the L1) so a
    /// stream that fits in L2 is served from there on re-reads; misses go
    /// to DRAM line by line.
    pub fn stream_fetch_at(&mut self, cycle: u64, addr: u64, bytes: u64) -> u64 {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.line_bytes;
        let l2_lat = self.l2.config().hit_latency;
        let mut done = cycle;
        for line in first..=last {
            let line_addr = line * self.line_bytes;
            if self.l2.access(line_addr) {
                self.stats.l2_hits += 1;
                done = done.max(cycle + l2_lat);
            } else {
                self.stats.dram_accesses += 1;
                self.stats.dram_bytes += self.line_bytes;
                done = done.max(self.dram.access_at(cycle + l2_lat, self.line_bytes));
            }
        }
        done
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The DRAM channel (for inspecting queue state in tests).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&CpuConfig::default())
    }

    #[test]
    fn l1_hit_is_cheap() {
        let mut h = hierarchy();
        let cold = h.load_at(0, 0x1000, 8);
        let warm = h.load_at(cold, 0x1000, 8);
        assert!(cold >= 120, "cold load goes to DRAM: {cold}");
        assert_eq!(warm, cold + 2, "warm load is an L1 hit");
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn multi_line_load_pays_per_line() {
        let mut h = hierarchy();
        let one = h.load_at(0, 0x2000, 8);
        let mut h2 = hierarchy();
        let two = h2.load_at(0, 0x2000, 128); // spans 2 lines
        assert!(two > one, "{two} vs {one}");
    }

    #[test]
    fn streaming_gets_prefetched() {
        let mut h = hierarchy();
        let mut cycle = 0;
        // Walk a long stream; later lines should increasingly be covered
        // by the prefetcher instead of paying full DRAM latency.
        for i in 0..64u64 {
            cycle = h.load_at(cycle, 0x10_0000 + i * 64, 64);
        }
        let s = h.stats();
        assert!(
            s.prefetch_covered > 20,
            "prefetch covered {}",
            s.prefetch_covered
        );
        // Every line was either a demand DRAM miss, prefetch-covered, or
        // an L1/L2 hit.
        assert_eq!(
            s.prefetch_covered + s.dram_accesses + s.l1_hits + s.l2_hits,
            64
        );
    }

    #[test]
    fn random_access_is_not_prefetched() {
        let mut h = hierarchy();
        let mut cycle = 0;
        let mut addr = 0x40_0000u64;
        for i in 0..32 {
            addr = addr.wrapping_add(64 * 97 * (i + 1)); // non-unit stride
            cycle = h.load_at(cycle, addr, 8);
        }
        assert_eq!(h.stats().prefetch_covered, 0);
    }

    #[test]
    fn stream_fetch_moves_bytes_and_caches_in_l2() {
        let mut h = hierarchy();
        let cold = h.stream_fetch_at(0, 0x8000, 256);
        assert!(cold >= 120);
        assert_eq!(h.stats().dram_bytes, 256);
        // Re-fetching the same stream hits L2.
        let warm = h.stream_fetch_at(cold, 0x8000, 256);
        assert_eq!(warm, cold + 12, "re-read served from L2");
        assert_eq!(h.stats().dram_bytes, 256, "no extra DRAM traffic");
    }

    #[test]
    fn l2_captures_medium_working_set() {
        let mut h = hierarchy();
        // Working set of 64 KB: bigger than L1 (32 KB), fits L2 (256 KB).
        let lines = 64 * 1024 / 64;
        let mut cycle = 0;
        for round in 0..2 {
            for i in 0..lines {
                // Stride by 128 lines to defeat next-line prefetch.
                let addr = ((i * 127) % lines) as u64 * 64;
                cycle = h.load_at(cycle, addr, 8);
            }
            if round == 0 {
                // warm-up
                continue;
            }
        }
        let s = h.stats();
        assert!(s.l2_hits > 0, "L2 should capture re-references: {s:?}");
    }
}
