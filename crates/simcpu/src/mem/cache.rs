//! Set-associative cache with true-LRU replacement.

use crate::config::CacheConfig;

/// One cache level's tag array.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Monotonic use stamps for LRU.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry does
    /// not divide evenly.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^n");
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Look up the line containing `addr`; fills on miss. Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let base = set * self.cfg.ways;
        // Hit?
        for way in 0..self.cfg.ways {
            if self.tags[base + way] == line {
                self.stamps[base + way] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU.
        self.misses += 1;
        let victim = (0..self.cfg.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Probe without filling or touching LRU state.
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let base = set * self.cfg.ways;
        (0..self.cfg.ways).any(|w| self.tags[base + w] == line)
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Reset statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 B, 2-way => 2 sets.
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with even line index (2 sets).
        c.access(0); // line 0 -> set 0
        c.access(128); // line 2 -> set 0
        assert!(c.access(0)); // refresh line 0
        c.access(256); // line 4 -> set 0, evicts line 2 (LRU)
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(128); // set 0
        c.access(192); // set 1
        assert!(c.contains(0) && c.contains(64) && c.contains(128) && c.contains(192));
    }

    #[test]
    fn contains_does_not_fill() {
        let c = tiny();
        assert!(!c.contains(0));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset_stats();
        assert_eq!(c.misses(), 0);
        assert!(c.access(0), "contents survive a stats reset");
    }

    #[test]
    fn default_l1_geometry_works() {
        let mut c = Cache::new(crate::config::CpuConfig::default().l1);
        // Fill more than the cache and ensure it still functions.
        for i in 0..2048u64 {
            c.access(i * 64);
        }
        assert_eq!(c.misses(), 2048);
        // Recent lines should still be resident.
        assert!(c.contains(2047 * 64));
    }
}
