//! Main-memory timing: a latency + occupied-channel bandwidth model.
//!
//! Each transfer sees the access latency once and then occupies the
//! channel for `bytes / bandwidth` cycles; concurrent requesters (the CPU
//! and the decoding unit's streaming engine share the channel) queue
//! behind each other's occupancy, which is what throttles the hardware
//! scheme when the compressed stream and the activation traffic collide.

use crate::config::DramConfig;

/// The DRAM channel.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Cycle at which the channel becomes free.
    next_free: u64,
    bytes_transferred: u64,
    accesses: u64,
}

impl Dram {
    /// A fresh channel.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            next_free: 0,
            bytes_transferred: 0,
            accesses: 0,
        }
    }

    /// Issue a transfer of `bytes` at `cycle`; returns the completion
    /// cycle of the *first* critical word (latency) — the channel stays
    /// occupied until the whole transfer drains.
    pub fn access_at(&mut self, cycle: u64, bytes: u64) -> u64 {
        let start = cycle.max(self.next_free);
        let occupancy = (bytes as f64 / self.cfg.bytes_per_cycle).ceil() as u64;
        self.next_free = start + occupancy;
        self.accesses += 1;
        self.bytes_transferred += bytes;
        start + self.cfg.latency
    }

    /// Cycle at which the channel is next free.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Total bytes moved.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Total transfers.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Reset statistics and queue state.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.bytes_transferred = 0;
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig {
            latency: 100,
            bytes_per_cycle: 4.0,
        })
    }

    #[test]
    fn single_access_sees_latency() {
        let mut d = dram();
        assert_eq!(d.access_at(0, 64), 100);
        assert_eq!(d.next_free(), 16); // 64 B / 4 B-per-cycle
    }

    #[test]
    fn back_to_back_accesses_queue_on_bandwidth() {
        let mut d = dram();
        let a = d.access_at(0, 64);
        let b = d.access_at(0, 64); // queues behind the first transfer
        assert_eq!(a, 100);
        assert_eq!(b, 16 + 100);
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.bytes_transferred(), 128);
    }

    #[test]
    fn idle_channel_does_not_queue() {
        let mut d = dram();
        d.access_at(0, 64);
        // Long after the channel drained: no queueing.
        assert_eq!(d.access_at(1000, 64), 1100);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = dram();
        d.access_at(0, 4096);
        d.reset();
        assert_eq!(d.next_free(), 0);
        assert_eq!(d.bytes_transferred(), 0);
    }
}
