//! The memory system: caches, DRAM, and the hierarchy that ties them
//! together with a streaming prefetcher.

pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use cache::Cache;
pub use dram::Dram;
pub use hierarchy::{Hierarchy, MemStats};
