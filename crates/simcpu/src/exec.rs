//! The in-order execution model.
//!
//! A [`Machine`] consumes [`TraceOp`]s one at a time and advances a cycle
//! counter under these rules:
//!
//! * `issue_width` ops issue per cycle (slot accounting);
//! * loads occupy a miss-queue (MSHR) slot until their data returns; when
//!   the queue is full the pipeline waits for the oldest entry;
//! * a compute op waits for every load issued since the previous compute
//!   op (the loads that feed it) — the in-order load-to-use stall;
//! * `lddu` arms the decoding unit; `ldps` waits on it like a load.
//!
//! This is deliberately simpler than gem5's A53 model, but it reproduces
//! the first-order effects the paper's argument rests on: weight-load
//! latency on the critical path, bandwidth-bound streaming, and the
//! overlap the decoding unit buys.

use crate::config::CpuConfig;
use crate::decode_unit::{DecodeUnit, UnitStats};
use crate::mem::{Hierarchy, MemStats};
use crate::trace::TraceOp;
use std::collections::VecDeque;

/// Cycle-level outcome of running a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total cycles.
    pub cycles: u64,
    /// Ops executed.
    pub ops: u64,
    /// Cycles lost waiting on memory (load-to-use).
    pub mem_stall_cycles: u64,
    /// Cycles lost waiting on the decoding unit.
    pub unit_stall_cycles: u64,
    /// Cycles spent in scalar (software-decode) work.
    pub scalar_cycles: u64,
}

/// The simulated core.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: CpuConfig,
    mem: Hierarchy,
    unit: DecodeUnit,
    cycle: u64,
    slot_carry: u64,
    /// Outstanding load completion times (bounded by MSHRs).
    inflight: VecDeque<u64>,
    /// Latest data-ready time of loads since the last compute op.
    pending_ready: u64,
    stats: ExecStats,
}

impl Machine {
    /// A fresh machine.
    pub fn new(cfg: CpuConfig) -> Self {
        Machine {
            mem: Hierarchy::new(&cfg),
            unit: DecodeUnit::new(cfg.decode_unit),
            cfg,
            cycle: 0,
            slot_carry: 0,
            inflight: VecDeque::new(),
            pending_ready: 0,
            stats: ExecStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Execution statistics.
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats;
        s.cycles = self.cycle;
        s
    }

    /// Memory statistics.
    pub fn mem_stats(&self) -> MemStats {
        self.mem.stats()
    }

    /// Decoding-unit statistics.
    pub fn unit_stats(&self) -> UnitStats {
        self.unit.stats()
    }

    /// Spend `slots` issue slots.
    fn issue(&mut self, slots: u64) {
        let total = self.slot_carry + slots;
        self.cycle += total / self.cfg.cost.issue_width;
        self.slot_carry = total % self.cfg.cost.issue_width;
    }

    /// Jump the clock forward (stall); issue slots restart aligned.
    fn stall_until(&mut self, t: u64) -> u64 {
        if t > self.cycle {
            let lost = t - self.cycle;
            self.cycle = t;
            self.slot_carry = 0;
            lost
        } else {
            0
        }
    }

    /// Execute one op.
    pub fn exec(&mut self, op: TraceOp) {
        self.stats.ops += 1;
        match op {
            TraceOp::Load { addr, bytes } => {
                self.issue(1);
                // MSHR budget: wait for the oldest outstanding miss if full.
                while self.inflight.len() >= self.cfg.cost.mshrs {
                    let oldest = self.inflight.pop_front().expect("nonempty");
                    self.stats.mem_stall_cycles +=
                        self.stall_until(oldest.min(self.pending_ready.max(oldest)));
                }
                let done = self.mem.load_at(self.cycle, addr, bytes as u64);
                if done > self.cycle {
                    self.inflight.push_back(done);
                }
                self.pending_ready = self.pending_ready.max(done);
            }
            TraceOp::Store { addr, bytes: _ } => {
                self.issue(1);
                self.mem.store_at(self.cycle, addr);
            }
            TraceOp::Vop { count } => {
                self.stats.mem_stall_cycles += self.stall_until(self.pending_ready);
                self.pending_ready = 0;
                self.inflight.retain(|&d| d > self.cycle);
                self.issue(count as u64);
            }
            TraceOp::Scalar { cycles } => {
                self.stats.mem_stall_cycles += self.stall_until(self.pending_ready);
                self.pending_ready = 0;
                self.cycle += cycles as u64;
                self.slot_carry = 0;
                self.stats.scalar_cycles += cycles as u64;
            }
            TraceOp::Lddu {
                stream_addr,
                stream_bytes,
                num_seqs,
                unique_seqs,
                num_groups,
            } => {
                self.issue(1);
                self.unit.lddu(
                    self.cycle,
                    stream_addr,
                    stream_bytes,
                    num_seqs,
                    unique_seqs,
                    num_groups,
                );
            }
            TraceOp::Ldps => {
                self.issue(1);
                let before = self.unit.stats().consumer_stall_cycles;
                let ready = self.unit.ldps(self.cycle, &mut self.mem);
                let stalled = self.unit.stats().consumer_stall_cycles - before;
                self.stats.unit_stall_cycles += stalled;
                self.pending_ready = self.pending_ready.max(ready);
            }
        }
    }

    /// Execute a whole op stream.
    pub fn run(&mut self, ops: impl IntoIterator<Item = TraceOp>) {
        for op in ops {
            self.exec(op);
        }
        // Drain: the trace's results must be architecturally visible.
        let t = self.pending_ready;
        self.stats.mem_stall_cycles += self.stall_until(t);
        self.pending_ready = 0;
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(CpuConfig::default())
    }

    #[test]
    fn pure_compute_is_issue_bound() {
        let mut m = machine();
        m.run((0..100).map(|_| TraceOp::Vop { count: 2 }));
        // 200 slots at width 2 = 100 cycles.
        assert_eq!(m.stats().cycles, 100);
        assert_eq!(m.stats().mem_stall_cycles, 0);
    }

    #[test]
    fn cold_load_then_compute_stalls() {
        let mut m = machine();
        m.run([
            TraceOp::Load {
                addr: 0x1000,
                bytes: 8,
            },
            TraceOp::Vop { count: 1 },
        ]);
        let s = m.stats();
        assert!(s.mem_stall_cycles >= 100, "stalls = {}", s.mem_stall_cycles);
    }

    #[test]
    fn warm_loads_do_not_stall_much() {
        let mut m = machine();
        // Touch the line, then re-load it repeatedly.
        m.run([TraceOp::Load {
            addr: 0x2000,
            bytes: 8,
        }]);
        let after_warm = m.stats();
        let mut ops = Vec::new();
        for _ in 0..50 {
            ops.push(TraceOp::Load {
                addr: 0x2000,
                bytes: 8,
            });
            ops.push(TraceOp::Vop { count: 1 });
        }
        m.run(ops);
        let s = m.stats();
        // Each L1 hit costs ~2 cycles of load-to-use; far from 120.
        let per_iter = (s.cycles - after_warm.cycles) as f64 / 50.0;
        assert!(per_iter < 6.0, "per-iteration cost {per_iter}");
    }

    #[test]
    fn independent_streaming_loads_overlap() {
        // Loads with no compute between them pipeline up to the MSHR
        // budget + prefetcher; total must be far below 32 * dram_latency.
        let mut m = machine();
        let ops: Vec<TraceOp> = (0..32)
            .map(|i| TraceOp::Load {
                addr: 0x10_0000 + i * 64,
                bytes: 8,
            })
            .collect();
        m.run(ops);
        assert!(
            m.stats().cycles < 32 * 120,
            "streaming should overlap: {}",
            m.stats().cycles
        );
    }

    #[test]
    fn scalar_work_adds_exact_cycles() {
        let mut m = machine();
        m.run([TraceOp::Scalar { cycles: 500 }]);
        assert_eq!(m.stats().scalar_cycles, 500);
        assert!(m.stats().cycles >= 500);
    }

    #[test]
    fn lddu_then_ldps_works_end_to_end() {
        let mut m = machine();
        m.run([
            TraceOp::Lddu {
                stream_addr: 0x4000_0000,
                stream_bytes: 72,
                num_seqs: 64,
                unique_seqs: 64,
                num_groups: 1,
            },
            TraceOp::Ldps,
            TraceOp::Vop { count: 1 },
        ]);
        let s = m.stats();
        assert!(
            s.unit_stall_cycles + s.mem_stall_cycles > 0,
            "first ldps waits"
        );
        assert_eq!(m.unit_stats().words_served, 1);
    }

    #[test]
    fn run_drains_pending_loads() {
        let mut m = machine();
        m.run([TraceOp::Load {
            addr: 0x9000,
            bytes: 8,
        }]);
        // Even without a consuming op, cycles include the load's return.
        assert!(m.stats().cycles >= 120);
    }
}
