//! Simulator configuration (paper Table IV).

use serde::{Deserialize, Serialize};

/// One cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways) && lines >= self.ways,
            "cache geometry must divide evenly"
        );
        lines / self.ways
    }
}

/// Main-memory timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Access latency in CPU cycles (first word).
    pub latency: u64,
    /// Sustained bandwidth in bytes per CPU cycle. At 1 GHz, 4 B/cycle
    /// models a mobile LPDDR4-class channel.
    pub bytes_per_cycle: f64,
}

/// The decoding unit (paper Fig. 6 / Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeUnitConfig {
    /// Maximum Huffman tree nodes supported.
    pub max_nodes: usize,
    /// Uncompressed table capacity in bytes (2 bytes per sequence).
    pub uncompressed_table_bytes: usize,
    /// Packing-unit register file in bytes.
    pub register_file_bytes: usize,
    /// Input buffer in bytes (stream fetch granule).
    pub input_buffer_bytes: usize,
    /// Sequences decoded per cycle (the banked uncompressed table allows
    /// more than one lookup per cycle). The default of 1.55 is calibrated
    /// so the end-to-end hardware speedup on the full ReActNet geometry
    /// reproduces the paper's 1.35x (Sec. VI); the paper's Verilog
    /// synthesis results, which would pin this, are not published.
    pub decode_per_cycle: f64,
    /// Sequences served per cycle when the codeword repeats one already
    /// resident in the uncompressed table (a table hit skips the Huffman
    /// walk entirely — only the banked table read and channel-pack
    /// remain, so hits drain faster than cold decodes).
    pub table_hits_per_cycle: f64,
    /// Cycles to execute `lddu` (fetch + apply the configuration
    /// structure) before decoding starts.
    pub config_latency: u64,
}

/// Per-operation-class costs of the in-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Instructions issued per cycle.
    pub issue_width: u64,
    /// Outstanding cache-miss budget (MSHRs).
    pub mshrs: usize,
    /// Cycles of scalar work to decode ONE bit sequence in software
    /// (variable-length prefix extraction across word boundaries,
    /// length-table lookup, table read, then nine shift-and-or steps to
    /// channel-pack the bits). The default of 45 is calibrated so the
    /// software scheme lands on the paper's 1.47x slowdown (Sec. IV-B).
    pub sw_decode_cycles_per_seq: u64,
    /// Lines the streaming prefetcher runs ahead.
    pub prefetch_degree: usize,
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Core frequency in GHz (Table IV: 1 GHz) — used only to convert
    /// cycles to wall-clock time in reports.
    pub freq_ghz: f64,
    /// L1 data cache (Table IV: 32 KB).
    pub l1: CacheConfig,
    /// L2 cache (Table IV: 256 KB).
    pub l2: CacheConfig,
    /// DRAM (Table IV: 4 GB DDR4 — capacity is irrelevant to timing).
    pub dram: DramConfig,
    /// Decoding unit parameters.
    pub decode_unit: DecodeUnitConfig,
    /// Pipeline costs.
    pub cost: CostModel,
    /// Output-pixel tile size of the convolution inner loop (bounded by
    /// the 32 × 128-bit vector register file, Table IV).
    pub pixel_tile: usize,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            freq_ghz: 1.0,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 4,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 64,
                ways: 8,
                hit_latency: 12,
            },
            dram: DramConfig {
                latency: 120,
                bytes_per_cycle: 4.0,
            },
            decode_unit: DecodeUnitConfig {
                max_nodes: 4,
                uncompressed_table_bytes: 1024,
                register_file_bytes: 256,
                input_buffer_bytes: 256,
                decode_per_cycle: 1.55,
                table_hits_per_cycle: 3.1,
                config_latency: 40,
            },
            cost: CostModel {
                issue_width: 2,
                mshrs: 2,
                sw_decode_cycles_per_seq: 45,
                prefetch_degree: 2,
            },
            pixel_tile: 2,
        }
    }
}

impl CpuConfig {
    /// Convert cycles to milliseconds at the configured frequency.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9) * 1e3
    }

    /// Render the Table IV parameter block.
    pub fn to_table(&self) -> String {
        format!(
            "Parameter                Value\n\
             CPU                      in-order, {}-issue (A53-like)\n\
             Frequency                {} GHz\n\
             CPU L1 Cache             {} KB\n\
             CPU L2 Cache             {} KB\n\
             Main Memory              DDR4, {} cycles, {} B/cycle\n\
             Vector Registers         32 (128 bits)\n\
             Decoding Unit\n\
             Max number of Nodes      {}\n\
             Uncompressed table       {} KB\n\
             Register file            {} bytes\n\
             Input Buffer             {} bytes\n",
            self.cost.issue_width,
            self.freq_ghz,
            self.l1.size_bytes / 1024,
            self.l2.size_bytes / 1024,
            self.dram.latency,
            self.dram.bytes_per_cycle,
            self.decode_unit.max_nodes,
            self.decode_unit.uncompressed_table_bytes / 1024,
            self.decode_unit.register_file_bytes,
            self.decode_unit.input_buffer_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table4() {
        let c = CpuConfig::default();
        assert_eq!(c.freq_ghz, 1.0);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.decode_unit.max_nodes, 4);
        assert_eq!(c.decode_unit.uncompressed_table_bytes, 1024);
        assert_eq!(c.decode_unit.register_file_bytes, 256);
        assert_eq!(c.decode_unit.input_buffer_bytes, 256);
    }

    #[test]
    fn cache_sets_power_of_two_geometry() {
        let c = CpuConfig::default();
        assert_eq!(c.l1.sets(), 128);
        assert_eq!(c.l2.sets(), 512);
    }

    #[test]
    fn cycles_to_ms_at_1ghz() {
        let c = CpuConfig::default();
        assert!((c.cycles_to_ms(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_mentions_key_params() {
        let t = CpuConfig::default().to_table();
        assert!(t.contains("32 KB") && t.contains("256 KB") && t.contains("1 KB"));
    }
}
