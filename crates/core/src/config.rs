//! The decoding unit's configuration structure (paper Table III).
//!
//! Before a compressed kernel is evaluated, the `lddu` instruction loads
//! this structure from memory into the decoding unit: how many sequences
//! the stream holds, where it lives, how long it is, and the Huffman tree
//! (node code lengths + table sizes). The `simcpu` crate consumes this
//! when it models `lddu`.

use crate::huffman::SimplifiedTree;
use serde::{Deserialize, Serialize};

/// Table III: the values `lddu` loads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecoderConfig {
    /// "Number of bit sequences" — codewords in the stream.
    pub num_sequences: u64,
    /// "Compressed sequences pointer" — simulated byte address of the
    /// stream in main memory.
    pub stream_ptr: u64,
    /// "Compressed sequences length" — stream length in bytes.
    pub stream_len_bytes: u64,
    /// "Huffman tree nodes" — per-node total code length in bits.
    pub node_code_lengths: Vec<u8>,
    /// Entries held in each node's table (needed to size the banked
    /// uncompressed table).
    pub node_table_sizes: Vec<u16>,
}

impl DecoderConfig {
    /// Derive the configuration for a built tree and a stream placed at
    /// `stream_ptr`.
    pub fn for_tree(
        tree: &SimplifiedTree,
        num_sequences: u64,
        stream_ptr: u64,
        stream_len_bytes: u64,
    ) -> Self {
        DecoderConfig {
            num_sequences,
            stream_ptr,
            stream_len_bytes,
            node_code_lengths: tree.length_table(),
            node_table_sizes: (0..tree.config().nodes())
                .map(|i| tree.table(i).len() as u16)
                .collect(),
        }
    }

    /// Number of tree nodes.
    pub fn nodes(&self) -> usize {
        self.node_code_lengths.len()
    }

    /// Total uncompressed-table entries (hardware budget: 512 entries =
    /// 1 KB at 2 bytes per sequence, paper Table IV).
    pub fn table_entries(&self) -> usize {
        self.node_table_sizes.iter().map(|&n| n as usize).sum()
    }

    /// Size of this structure in memory (what `lddu`'s pointer load
    /// fetches): three 8-byte words plus two bytes-ish vectors; modeled as
    /// packed fields.
    pub fn struct_bytes(&self) -> usize {
        8 + 8 + 8 + self.node_code_lengths.len() + 2 * self.node_table_sizes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqTable;
    use crate::huffman::TreeConfig;
    use crate::SimplifiedTree;

    fn tree() -> SimplifiedTree {
        let freq = FreqTable::from_counts((1..=512u64).collect()).unwrap();
        SimplifiedTree::build(&freq, TreeConfig::paper())
    }

    #[test]
    fn for_tree_copies_lengths() {
        let t = tree();
        let cfg = DecoderConfig::for_tree(&t, 4096, 0x1000, 3456);
        assert_eq!(cfg.nodes(), 4);
        assert_eq!(cfg.node_code_lengths, t.length_table());
        assert_eq!(cfg.table_entries(), 512);
        assert_eq!(cfg.num_sequences, 4096);
        assert_eq!(cfg.stream_ptr, 0x1000);
    }

    #[test]
    fn table_fits_hardware_budget() {
        // Paper Table IV: 1 KB uncompressed table = 512 entries of 2 bytes.
        let cfg = DecoderConfig::for_tree(&tree(), 1, 0, 1);
        assert!(cfg.table_entries() <= 512);
    }

    #[test]
    fn struct_bytes_counts_fields() {
        let cfg = DecoderConfig::for_tree(&tree(), 1, 0, 1);
        assert_eq!(cfg.struct_bytes(), 24 + 4 + 8);
    }

    #[test]
    fn clone_and_eq() {
        let cfg = DecoderConfig::for_tree(&tree(), 7, 42, 9);
        assert_eq!(cfg.clone(), cfg);
    }
}
