//! End-to-end kernel and model compression (paper Sec. IV-A, Table V).
//!
//! [`KernelCodec`] bundles a tree configuration and an optional clustering
//! pass. `compress` computes the kernel's frequency table (offline step),
//! optionally applies clustering, builds the simplified tree, and encodes
//! every channel's bit sequence consecutively into one stream — exactly
//! the in-memory layout the paper describes ("we store them consecutively
//! in memory as a sequence of encoded words").
//!
//! [`model_compression_ratio`] applies the codec to every 3×3 kernel of a
//! [`ReActNet`] and accounts the whole-model ratio (the paper's 1.2x).

use crate::bitseq::BitSeq;
use crate::bitstream::{BitReader, BitWriter};
use crate::cluster::{ClusterConfig, ClusterPlan, Substitution};
use crate::config::DecoderConfig;
use crate::error::{KcError, Result};
use crate::freq::FreqTable;
use crate::huffman::{SimplifiedTree, TreeConfig};
use bitnn::model::{OpCategory, ReActNet};
use bitnn::tensor::BitTensor;
use bitnn::weightgen::{read_sequence, write_sequence};
use bytes::Bytes;

/// A compression pipeline: simplified tree + optional clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCodec {
    tree_config: TreeConfig,
    cluster: Option<ClusterConfig>,
}

impl KernelCodec {
    /// The paper's "Encoding" pipeline: 4-node tree, no clustering.
    pub fn paper() -> Self {
        KernelCodec {
            tree_config: TreeConfig::paper(),
            cluster: None,
        }
    }

    /// The paper's "Clustering" pipeline: 4-node tree plus Hamming-1
    /// substitution of the 256 least common sequences.
    pub fn paper_clustered() -> Self {
        KernelCodec {
            tree_config: TreeConfig::paper(),
            cluster: Some(ClusterConfig::default()),
        }
    }

    /// Custom tree configuration, no clustering.
    pub fn new(tree_config: TreeConfig) -> Self {
        KernelCodec {
            tree_config,
            cluster: None,
        }
    }

    /// Add a clustering pass.
    pub fn with_clustering(mut self, config: ClusterConfig) -> Self {
        self.cluster = Some(config);
        self
    }

    /// The tree configuration in use.
    pub fn tree_config(&self) -> &TreeConfig {
        &self.tree_config
    }

    /// The clustering configuration, if any.
    pub fn cluster_config(&self) -> Option<&ClusterConfig> {
        self.cluster.as_ref()
    }

    /// Compress a `[K, C, 3, 3]` binary kernel.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::BadKernelShape`] for other shapes.
    pub fn compress(&self, kernel: &BitTensor) -> Result<CompressedKernel> {
        let shape = kernel.shape();
        if shape.len() != 4 || shape[2] != 3 || shape[3] != 3 {
            return Err(KcError::BadKernelShape(shape.to_vec()));
        }
        let freq = FreqTable::from_kernel(kernel)?;

        let (encoded_kernel, substitutions, freq) = match &self.cluster {
            Some(cfg) => {
                let plan = ClusterPlan::build(&freq, cfg);
                let rewritten = plan.apply_to_kernel(kernel)?;
                let freq = plan.apply_to_freq(&freq);
                (rewritten, plan.substitutions().to_vec(), freq)
            }
            None => (kernel.clone(), Vec::new(), freq),
        };

        let tree = SimplifiedTree::build(&freq, self.tree_config.clone());
        let (filters, channels) = (shape[0], shape[1]);
        let mut writer = BitWriter::new();
        for f in 0..filters {
            for ch in 0..channels {
                let seq = BitSeq::new_unchecked(read_sequence(&encoded_kernel, f, ch));
                tree.encode(seq, &mut writer)?;
            }
        }
        let stream_bits = writer.bits_written();
        Ok(CompressedKernel {
            filters,
            channels,
            tree,
            stream: writer.into_bytes(),
            stream_bits,
            substitutions,
        })
    }
}

impl Default for KernelCodec {
    fn default() -> Self {
        KernelCodec::paper()
    }
}

/// A compressed 3×3 binary kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedKernel {
    filters: usize,
    channels: usize,
    tree: SimplifiedTree,
    stream: Bytes,
    stream_bits: usize,
    substitutions: Vec<Substitution>,
}

impl CompressedKernel {
    /// Output filter count of the original kernel.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Input channel count of the original kernel.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The simplified tree used for this kernel.
    pub fn tree(&self) -> &SimplifiedTree {
        &self.tree
    }

    /// The encoded stream (final byte zero-padded).
    pub fn stream(&self) -> &Bytes {
        &self.stream
    }

    /// Exact payload size in bits.
    pub fn stream_bits(&self) -> usize {
        self.stream_bits
    }

    /// Number of codewords (one per kernel channel).
    pub fn num_sequences(&self) -> usize {
        self.filters * self.channels
    }

    /// Substitutions performed by the clustering pass (empty without one).
    pub fn substitutions(&self) -> &[Substitution] {
        &self.substitutions
    }

    /// Uncompressed payload size in bits (9 bits per sequence — the
    /// paper's baseline, which stores kernels bit-packed).
    pub fn original_bits(&self) -> usize {
        self.num_sequences() * 9
    }

    /// Payload compression ratio (Table V's metric).
    pub fn ratio(&self) -> f64 {
        self.original_bits() as f64 / self.stream_bits as f64
    }

    /// Compression ratio including the decoder side tables (each table
    /// entry is a 2-byte word in the hardware's uncompressed table, plus
    /// one length byte per node).
    pub fn ratio_with_tables(&self) -> f64 {
        let table_bits = self.tree.assigned() * 16 + self.tree.config().nodes() * 8;
        self.original_bits() as f64 / (self.stream_bits + table_bits) as f64
    }

    /// Decode the stream back into a `[K, C, 3, 3]` kernel.
    ///
    /// With clustering, this equals the *rewritten* kernel (the paper
    /// deploys the substituted weights); without clustering it is
    /// bit-exact with the input.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] if the stream is damaged.
    pub fn decompress(&self) -> Result<BitTensor> {
        let mut kernel = BitTensor::zeros(&[self.filters, self.channels, 3, 3]);
        let mut reader = BitReader::with_limit(&self.stream, self.stream_bits);
        for f in 0..self.filters {
            for ch in 0..self.channels {
                let seq = self.tree.decode(&mut reader)?;
                write_sequence(&mut kernel, f, ch, seq.value());
            }
        }
        if reader.remaining() != 0 {
            return Err(KcError::CorruptStream(format!(
                "{} bits left over after decoding",
                reader.remaining()
            )));
        }
        Ok(kernel)
    }

    /// The decoding unit configuration for this kernel, with the stream
    /// placed at `stream_ptr` (Table III).
    pub fn decoder_config(&self, stream_ptr: u64) -> DecoderConfig {
        DecoderConfig::for_tree(
            &self.tree,
            self.num_sequences() as u64,
            stream_ptr,
            self.stream.len() as u64,
        )
    }
}

/// Whole-model compression accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelRatio {
    /// Model bits before compression.
    pub original_bits: u64,
    /// Model bits after compressing every 3×3 kernel.
    pub compressed_bits: u64,
    /// Average per-kernel payload ratio.
    pub mean_kernel_ratio: f64,
}

impl ModelRatio {
    /// Whole-model compression ratio (the paper's 1.2x).
    pub fn ratio(&self) -> f64 {
        self.original_bits as f64 / self.compressed_bits as f64
    }
}

/// Compress every 3×3 kernel of `model` with `codec` and account the
/// whole-model ratio: all other storage (input/output layers, 1×1 convs,
/// batch-norm, activations) is left untouched, which is what limits the
/// model-level ratio to ≈1.2x when kernels compress by ≈1.32x.
///
/// # Errors
///
/// Propagates compression errors (cannot occur for well-formed models).
pub fn model_compression_ratio(model: &ReActNet, codec: &KernelCodec) -> Result<ModelRatio> {
    let breakdown = model.storage_breakdown();
    let original_bits = breakdown.total_bits() as u64;
    let mut compressed_bits = original_bits;
    let mut ratios = Vec::new();
    for i in 0..model.num_blocks() {
        let kernel = model.conv3_weights(i);
        let ck = codec.compress(kernel)?;
        // Replace this kernel's 9-bit-per-sequence storage by the stream.
        compressed_bits -= ck.original_bits() as u64;
        compressed_bits += ck.stream_bits() as u64;
        ratios.push(ck.ratio());
    }
    // Sanity: the conv3x3 category is exactly what we swapped out.
    debug_assert_eq!(
        breakdown.bits(OpCategory::Conv3x3) as u64,
        (0..model.num_blocks())
            .map(|i| model.conv3_weights(i).len() as u64)
            .sum::<u64>()
    );
    Ok(ModelRatio {
        original_bits,
        compressed_bits,
        mean_kernel_ratio: ratios.iter().sum::<f64>() / ratios.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnn::weightgen::SeqDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel(block: usize, seed: u64) -> BitTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        SeqDistribution::for_block(block, 0).sample_kernel(64, 64, &mut rng)
    }

    #[test]
    fn encoding_roundtrip_is_bit_exact() {
        let k = kernel(1, 3);
        let ck = KernelCodec::paper().compress(&k).unwrap();
        assert_eq!(ck.decompress().unwrap(), k);
    }

    #[test]
    fn encoding_ratio_in_paper_range() {
        // Table V "Encoding": 1.18x - 1.25x.
        for block in [1, 5, 12] {
            let k = kernel(block, block as u64);
            let ck = KernelCodec::paper().compress(&k).unwrap();
            let r = ck.ratio();
            assert!((1.10..1.40).contains(&r), "block {block}: ratio {r}");
        }
    }

    #[test]
    fn clustering_improves_ratio() {
        // Table V: Clustering beats Encoding on every block.
        let k = kernel(1, 7);
        let plain = KernelCodec::paper().compress(&k).unwrap();
        let clustered = KernelCodec::paper_clustered().compress(&k).unwrap();
        assert!(
            clustered.ratio() > plain.ratio(),
            "{} vs {}",
            clustered.ratio(),
            plain.ratio()
        );
    }

    #[test]
    fn clustered_decompress_is_the_rewritten_kernel() {
        let k = kernel(2, 9);
        let codec = KernelCodec::paper_clustered();
        let ck = codec.compress(&k).unwrap();
        assert!(!ck.substitutions().is_empty());
        let restored = ck.decompress().unwrap();
        assert_ne!(restored, k, "clustering must change some channels");
        // Every channel moved by at most one bit.
        for f in 0..64 {
            for ch in 0..64 {
                let a = read_sequence(&k, f, ch);
                let b = read_sequence(&restored, f, ch);
                assert!((a ^ b).count_ones() <= 1);
            }
        }
    }

    #[test]
    fn rejects_non_3x3_kernels() {
        let k = BitTensor::zeros(&[4, 4, 1, 1]);
        assert!(matches!(
            KernelCodec::paper().compress(&k),
            Err(KcError::BadKernelShape(_))
        ));
    }

    #[test]
    fn stream_bits_match_tree_accounting() {
        let k = kernel(3, 11);
        let ck = KernelCodec::paper().compress(&k).unwrap();
        let freq = FreqTable::from_kernel(&k).unwrap();
        assert_eq!(ck.stream_bits() as u64, ck.tree().compressed_bits(&freq));
        assert_eq!(ck.num_sequences(), 64 * 64);
        assert_eq!(ck.original_bits(), 64 * 64 * 9);
    }

    #[test]
    fn decoder_config_reflects_stream() {
        let k = kernel(4, 13);
        let ck = KernelCodec::paper().compress(&k).unwrap();
        let cfg = ck.decoder_config(0xABCD);
        assert_eq!(cfg.stream_ptr, 0xABCD);
        assert_eq!(cfg.num_sequences, 64 * 64);
        assert_eq!(cfg.stream_len_bytes as usize, ck.stream().len());
        assert_eq!(cfg.nodes(), 4);
    }

    #[test]
    fn ratio_with_tables_is_lower_but_positive() {
        // Use a realistically-sized kernel (128 channels): the decoder
        // tables are a fixed cost, negligible against a large stream but
        // dominant for toy kernels.
        let mut rng = StdRng::seed_from_u64(17);
        let k = SeqDistribution::for_block(5, 0).sample_kernel(128, 128, &mut rng);
        let ck = KernelCodec::paper().compress(&k).unwrap();
        assert!(ck.ratio_with_tables() < ck.ratio());
        assert!(ck.ratio_with_tables() > 1.0, "{}", ck.ratio_with_tables());
    }

    #[test]
    fn model_ratio_near_paper_value() {
        // The paper reports 1.2x for the whole model; our synthetic tiny
        // model has different layer proportions, so use the full model.
        let model = ReActNet::full(1);
        let mr = model_compression_ratio(&model, &KernelCodec::paper_clustered()).unwrap();
        assert!(
            (1.10..1.35).contains(&mr.ratio()),
            "model ratio = {}",
            mr.ratio()
        );
        assert!(
            (1.25..1.45).contains(&mr.mean_kernel_ratio),
            "kernel ratio = {}",
            mr.mean_kernel_ratio
        );
        assert!(mr.compressed_bits < mr.original_bits);
    }

    #[test]
    fn custom_two_node_tree_works_end_to_end() {
        let k = kernel(7, 23);
        let codec = KernelCodec::new(crate::TreeConfig::with_capacities(vec![64, 256]).unwrap());
        let ck = codec.compress(&k).unwrap();
        // Code lengths: 1+6 = 7 and 2+8 = 10 (or widened).
        assert_eq!(ck.tree().code_len(0), 7);
        assert!(ck.tree().code_len(1) >= 10);
        assert_eq!(ck.decompress().unwrap(), k);
    }

    #[test]
    fn clustering_config_is_visible() {
        let codec = KernelCodec::paper_clustered();
        assert!(codec.cluster_config().is_some());
        assert_eq!(codec.cluster_config().unwrap().max_distance, 1);
        assert!(KernelCodec::paper().cluster_config().is_none());
        assert_eq!(codec.tree_config().nodes(), 4);
    }

    #[test]
    fn default_codec_is_paper_encoding() {
        assert_eq!(KernelCodec::default(), KernelCodec::paper());
    }

    #[test]
    fn single_filter_kernel_compresses() {
        let mut rng = StdRng::seed_from_u64(31);
        let k = SeqDistribution::for_block(1, 0).sample_kernel(1, 8, &mut rng);
        let ck = KernelCodec::paper().compress(&k).unwrap();
        assert_eq!(ck.num_sequences(), 8);
        assert_eq!(ck.decompress().unwrap(), k);
    }

    #[test]
    fn corrupt_stream_detected() {
        let k = kernel(6, 19);
        let ck = KernelCodec::paper().compress(&k).unwrap();
        // Truncate the stream by rebuilding with fewer bits.
        let mut broken = ck.clone();
        broken.stream_bits -= 3;
        assert!(broken.decompress().is_err());
    }
}
