//! MSB-first bit streams.
//!
//! Variable-length codes are written most-significant-bit first so that a
//! decoder reading the stream front-to-back sees each codeword's prefix
//! bits before its index bits — exactly how the hardware stream parser
//! consumes its input buffer (paper Fig. 6).

use crate::error::{KcError, Result};
use bytes::Bytes;

/// Write bits MSB-first into a growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the trailing partial byte (0..8).
    used: u8,
    bits_written: usize,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `len` bits of `code`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn write_bits(&mut self, code: u32, len: u8) {
        assert!(len <= 32, "codes longer than 32 bits are unsupported");
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            if self.used == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.used);
            self.used = (self.used + 1) % 8;
            self.bits_written += 1;
        }
    }

    /// Total bits written so far.
    pub fn bits_written(&self) -> usize {
        self.bits_written
    }

    /// Finish and return the backing bytes (final byte zero-padded).
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.bytes)
    }
}

/// Read bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position.
    pos: usize,
    /// Total readable bits (callers may cap below `bytes.len() * 8` to
    /// exclude the final byte's padding).
    limit: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over all bits of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            limit: bytes.len() * 8,
        }
    }

    /// Reader over the first `limit` bits of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` exceeds the available bits.
    pub fn with_limit(bytes: &'a [u8], limit: usize) -> Self {
        assert!(limit <= bytes.len() * 8, "limit beyond buffer");
        BitReader {
            bytes,
            pos: 0,
            limit,
        }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.limit - self.pos
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read one bit.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] at end of stream.
    pub fn read_bit(&mut self) -> Result<u32> {
        if self.pos >= self.limit {
            return Err(KcError::CorruptStream("unexpected end of stream".into()));
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }

    /// Read `len` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] if fewer than `len` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn read_bits(&mut self, len: u8) -> Result<u32> {
        assert!(len <= 32);
        if self.remaining() < len as usize {
            return Err(KcError::CorruptStream(format!(
                "wanted {len} bits, {} remaining",
                self.remaining()
            )));
        }
        let mut v = 0u32;
        for _ in 0..len {
            v = (v << 1) | self.read_bit()?;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        assert_eq!(w.bits_written(), 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::with_limit(&bytes, 4);
        assert_eq!(r.read_bit().unwrap(), 1);
        assert_eq!(r.read_bit().unwrap(), 0);
        assert_eq!(r.read_bit().unwrap(), 1);
        assert_eq!(r.read_bit().unwrap(), 1);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn msb_first_byte_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0000000, 7);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0b1000_0000);
    }

    #[test]
    fn cross_byte_codes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11111, 5);
        w.write_bits(0b000001111, 9); // spans bytes
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(5).unwrap(), 0b11111);
        assert_eq!(r.read_bits(9).unwrap(), 0b000001111);
    }

    #[test]
    fn limit_excludes_padding() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let n = w.bits_written();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1); // padded to a byte
        let mut r = BitReader::with_limit(&bytes, n);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn read_bits_checks_remaining() {
        let bytes = [0xFFu8];
        let mut r = BitReader::with_limit(&bytes, 6);
        assert!(r.read_bits(7).is_err());
        assert_eq!(r.read_bits(6).unwrap(), 0b111111);
    }

    proptest! {
        #[test]
        fn arbitrary_code_roundtrip(codes in proptest::collection::vec((any::<u32>(), 1u8..=32), 1..100)) {
            let mut w = BitWriter::new();
            for &(c, l) in &codes {
                let c = if l == 32 { c } else { c & ((1 << l) - 1) };
                w.write_bits(c, l);
            }
            let total = w.bits_written();
            let bytes = w.into_bytes();
            let mut r = BitReader::with_limit(&bytes, total);
            for &(c, l) in &codes {
                let c = if l == 32 { c } else { c & ((1 << l) - 1) };
                prop_assert_eq!(r.read_bits(l).unwrap(), c);
            }
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
