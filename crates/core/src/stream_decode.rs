//! Streaming group decoder: the software analogue of the paper's decode
//! unit (Fig. 6, streaming unit + packing unit).
//!
//! The hardware walks the compressed stream front-to-back, decodes one
//! 9-bit sequence at a time against the banked uncompressed table, and
//! channel-packs each group of up to 64 decoded sequences into **nine
//! 64-bit lane words** (one per 3×3 position) that the xnor-popcount
//! pipeline consumes directly. This module does exactly that in software:
//! [`GroupDecoder`] yields [`PackedGroup`]s whose words drop straight into
//! [`bitnn::pack::PackedKernel`]'s layout, so a compressed container can
//! feed the execution engine without ever materializing the intermediate
//! `[K, C, 3, 3]` bit tensor ([`crate::container::Container::decode_packed`]).
//!
//! A *group* is one `(filter, lane)` pair: the sequences of channels
//! `lane*64 .. lane*64+64` (fewer for the tail lane) of one output filter.
//! Groups are emitted in stream order — filter-major, lanes ascending —
//! which is the exact order [`crate::codec::KernelCodec::compress`] wrote
//! the codewords, so decoding is a single forward pass over the stream.

use crate::bitstream::BitReader;
use crate::container::Container;
use crate::error::{KcError, Result};
use crate::huffman::SimplifiedTree;
use bitnn::bank::{BankBuilder, SequenceBank};
use bitnn::pack::PackedKernel;
use bitnn::{lanes_for, LANE_BITS};

/// Sequences per full group — one 64-bit lane word's worth of channels.
pub const SEQS_PER_GROUP: usize = LANE_BITS;

/// Packed words per group: one per 3×3 kernel position.
pub const WORDS_PER_GROUP: usize = 9;

/// One channel-packed group of decoded sequences: the nine lane words the
/// paper's packing unit hands the compute pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedGroup {
    /// Output filter this group belongs to.
    pub filter: usize,
    /// Lane index within the filter (channels `lane*64 ..`).
    pub lane: usize,
    /// Sequences packed into this group (64, or fewer for a tail lane).
    pub seqs: usize,
    /// The nine packed lane words; bit `j` of word `p` is bit `p` (under
    /// the natural mapping, MSB = position (0,0)) of channel
    /// `lane*64 + j`'s sequence.
    pub words: [u64; WORDS_PER_GROUP],
}

/// A forward-only decoder that walks a container's Huffman stream and
/// emits channel-packed groups.
#[derive(Debug, Clone)]
pub struct GroupDecoder<'a> {
    tree: &'a SimplifiedTree,
    reader: BitReader<'a>,
    filters: usize,
    channels: usize,
    lanes: usize,
    /// Next group index in `0 .. filters * lanes`.
    next: usize,
}

impl<'a> GroupDecoder<'a> {
    /// Decoder over a parsed container's stream.
    pub fn new(container: &'a Container) -> Self {
        Self::from_parts(
            &container.tree,
            &container.stream,
            container.stream_bits,
            container.filters,
            container.channels,
        )
    }

    /// Decoder over raw parts (tree + stream + kernel geometry).
    ///
    /// # Panics
    ///
    /// Panics if `stream_bits` exceeds the stream's length in bits.
    pub fn from_parts(
        tree: &'a SimplifiedTree,
        stream: &'a [u8],
        stream_bits: usize,
        filters: usize,
        channels: usize,
    ) -> Self {
        GroupDecoder {
            tree,
            reader: BitReader::with_limit(stream, stream_bits),
            filters,
            channels,
            lanes: lanes_for(channels),
            next: 0,
        }
    }

    /// Total groups the stream yields (`filters * lanes_for(channels)`).
    pub fn num_groups(&self) -> usize {
        self.filters * self.lanes
    }

    /// Groups decoded so far.
    pub fn groups_decoded(&self) -> usize {
        self.next
    }

    /// Decode the next group, or `Ok(None)` once the kernel is complete.
    ///
    /// On completion the decoder verifies the stream was consumed exactly
    /// (no leftover payload bits — zero padding to the final byte boundary
    /// is checked by [`crate::container::read_container`]).
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] on a truncated stream, an
    /// invalid prefix, an index beyond a node table, or leftover bits
    /// after the final group.
    pub fn decode_next(&mut self) -> Result<Option<PackedGroup>> {
        if self.next == self.num_groups() {
            if self.reader.remaining() != 0 {
                return Err(KcError::CorruptStream(format!(
                    "{} bits left over after the final group",
                    self.reader.remaining()
                )));
            }
            return Ok(None);
        }
        let (filter, lane) = (self.next / self.lanes, self.next % self.lanes);
        let seqs = (self.channels - lane * LANE_BITS).min(SEQS_PER_GROUP);
        let mut words = [0u64; WORDS_PER_GROUP];
        for j in 0..seqs {
            let seq = self.tree.decode(&mut self.reader)?.value();
            // Natural mapping: bit 8 of the sequence is position (0,0).
            for (p, word) in words.iter_mut().enumerate() {
                *word |= (((seq >> (WORDS_PER_GROUP - 1 - p)) & 1) as u64) << j;
            }
        }
        self.next += 1;
        Ok(Some(PackedGroup {
            filter,
            lane,
            seqs,
            words,
        }))
    }

    /// Drain the remaining groups into a channel-packed kernel. The words
    /// of each group are scattered to `PackedKernel`'s
    /// `[(filter * 9 + position) * lanes + lane]` layout — no intermediate
    /// flat tensor exists at any point.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] if the stream is damaged or
    /// decoding was already past the first group.
    pub fn collect_packed(mut self) -> Result<PackedKernel> {
        if self.next != 0 {
            return Err(KcError::CorruptStream(
                "collect_packed needs a fresh decoder".into(),
            ));
        }
        let lanes = self.lanes;
        let mut data = vec![0u64; self.filters * WORDS_PER_GROUP * lanes];
        while let Some(g) = self.decode_next()? {
            for (p, &w) in g.words.iter().enumerate() {
                data[(g.filter * WORDS_PER_GROUP + p) * lanes + g.lane] = w;
            }
        }
        PackedKernel::from_lane_words(self.filters, self.channels, 3, 3, data)
            .map_err(|e| KcError::CorruptStream(format!("packing decoded groups: {e}")))
    }

    /// Drain the stream into a deduplicated [`SequenceBank`]: unique
    /// 9-bit sequences (with Hamming-1 cluster references) plus
    /// per-filter index lists, instead of fully materialized per-kernel
    /// lane words.
    ///
    /// Stream order is filter-major with lanes ascending, i.e. exactly
    /// `(filter, channel)` row-major — the order [`BankBuilder`] expects —
    /// so deduplication happens on the fly during the single forward pass
    /// and no dense representation exists at any point.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] if the stream is damaged or
    /// decoding was already past the first group.
    pub fn collect_bank(mut self) -> Result<SequenceBank> {
        if self.next != 0 {
            return Err(KcError::CorruptStream(
                "collect_bank needs a fresh decoder".into(),
            ));
        }
        let mut builder = BankBuilder::new(self.filters, self.channels);
        let groups = self.num_groups();
        while self.next < groups {
            let lane = self.next % self.lanes;
            let seqs = (self.channels - lane * LANE_BITS).min(SEQS_PER_GROUP);
            for _ in 0..seqs {
                let seq = self.tree.decode(&mut self.reader)?.value();
                builder
                    .push(seq)
                    .map_err(|e| KcError::CorruptStream(format!("building bank: {e}")))?;
            }
            self.next += 1;
        }
        if self.reader.remaining() != 0 {
            return Err(KcError::CorruptStream(format!(
                "{} bits left over after the final group",
                self.reader.remaining()
            )));
        }
        builder
            .finish()
            .map_err(|e| KcError::CorruptStream(format!("building bank: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CompressedKernel, KernelCodec};
    use bitnn::weightgen::SeqDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compressed(filters: usize, channels: usize) -> CompressedKernel {
        let mut rng = StdRng::seed_from_u64((filters * 1000 + channels) as u64);
        let kernel = SeqDistribution::for_block(2, 0).sample_kernel(filters, channels, &mut rng);
        KernelCodec::paper().compress(&kernel).unwrap()
    }

    fn decoder_for(ck: &CompressedKernel) -> GroupDecoder<'_> {
        GroupDecoder::from_parts(
            ck.tree(),
            ck.stream(),
            ck.stream_bits(),
            ck.filters(),
            ck.channels(),
        )
    }

    #[test]
    fn groups_match_offline_packed_kernel() {
        // Streamed groups must be the exact words PackedKernel::pack
        // derives from the offline-decompressed tensor.
        for (f, c) in [(4usize, 16usize), (3, 64), (2, 70), (5, 130)] {
            let ck = compressed(f, c);
            let offline = bitnn::pack::PackedKernel::pack(&ck.decompress().unwrap()).unwrap();
            let mut dec = decoder_for(&ck);
            assert_eq!(dec.num_groups(), f * lanes_for(c));
            let mut seen = 0;
            while let Some(g) = dec.decode_next().unwrap() {
                for (p, &w) in g.words.iter().enumerate() {
                    let lanes = offline.position_lanes(g.filter, p);
                    assert_eq!(w, lanes[g.lane], "({f},{c}) group {seen} pos {p}");
                }
                seen += 1;
            }
            assert_eq!(seen, dec.num_groups());
        }
    }

    #[test]
    fn collect_packed_equals_pack_of_decompress() {
        for (f, c) in [(4usize, 16usize), (2, 70)] {
            let ck = compressed(f, c);
            let streamed = decoder_for(&ck).collect_packed().unwrap();
            let offline = bitnn::pack::PackedKernel::pack(&ck.decompress().unwrap()).unwrap();
            assert_eq!(streamed, offline);
        }
    }

    #[test]
    fn tail_lane_groups_are_partial() {
        let ck = compressed(2, 70);
        let mut dec = decoder_for(&ck);
        let g0 = dec.decode_next().unwrap().unwrap();
        assert_eq!((g0.filter, g0.lane, g0.seqs), (0, 0, 64));
        let g1 = dec.decode_next().unwrap().unwrap();
        assert_eq!((g1.filter, g1.lane, g1.seqs), (0, 1, 6));
        // Tail-lane words never set bits above the real channels.
        for w in g1.words {
            assert_eq!(w >> 6, 0);
        }
    }

    #[test]
    fn truncated_stream_errors_not_panics() {
        let ck = compressed(4, 16);
        let tree = ck.tree().clone();
        for cut_bits in [0usize, 1, 5, ck.stream_bits() / 2, ck.stream_bits() - 1] {
            let mut dec = GroupDecoder::from_parts(&tree, ck.stream(), cut_bits, 4, 16);
            let mut r = Ok(Some(PackedGroup {
                filter: 0,
                lane: 0,
                seqs: 0,
                words: [0; WORDS_PER_GROUP],
            }));
            while let Ok(Some(_)) = r {
                r = dec.decode_next();
            }
            assert!(r.is_err(), "cut at {cut_bits} bits must error");
        }
    }

    #[test]
    fn leftover_bits_after_final_group_error() {
        let ck = compressed(4, 16);
        // Claim fewer filters than the stream encodes: the final-group
        // check must notice the surplus payload.
        let mut dec = GroupDecoder::from_parts(ck.tree(), ck.stream(), ck.stream_bits(), 3, 16);
        let mut last = dec.decode_next();
        while let Ok(Some(_)) = last {
            last = dec.decode_next();
        }
        assert!(last.is_err(), "surplus bits must be rejected");
    }

    #[test]
    fn collect_packed_rejects_partially_drained_decoder() {
        let ck = compressed(4, 16);
        let mut dec = decoder_for(&ck);
        dec.decode_next().unwrap();
        assert!(dec.collect_packed().is_err());
    }

    #[test]
    fn collect_bank_matches_offline_sequences() {
        use bitnn::weightgen::read_sequence;
        for (f, c) in [(4usize, 16usize), (2, 70), (5, 130)] {
            let ck = compressed(f, c);
            let bank = decoder_for(&ck).collect_bank().unwrap();
            let offline = ck.decompress().unwrap();
            assert_eq!((bank.filters(), bank.channels()), (f, c));
            for fi in 0..f {
                for ch in 0..c {
                    assert_eq!(bank.sequence(fi, ch), read_sequence(&offline, fi, ch));
                }
            }
            // The bank's dense materialization equals the offline pack.
            assert_eq!(
                bank.to_packed(),
                bitnn::pack::PackedKernel::pack(&offline).unwrap()
            );
            assert!(bank.dedup_ratio() >= 1.0);
        }
    }

    #[test]
    fn collect_bank_rejects_partially_drained_decoder() {
        let ck = compressed(4, 16);
        let mut dec = decoder_for(&ck);
        dec.decode_next().unwrap();
        assert!(dec.collect_bank().is_err());
    }
}
