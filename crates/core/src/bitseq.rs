//! The 9-bit bit sequence (paper Fig. 2).
//!
//! A binary 3×3 kernel channel has nine ±1 values; stored as bits they form
//! a 9-bit integer under the *natural mapping*: position (0,0) is the most
//! significant bit, position (2,2) the least significant. The all-`-1`
//! channel is sequence 0, the all-`+1` channel is sequence 511.

use crate::error::{KcError, Result};
use std::fmt;

/// Number of distinct bit sequences for a 3×3 channel.
pub const NUM_SEQUENCES: usize = 512;

/// Bits per sequence.
pub const SEQ_BITS: u32 = 9;

/// A validated 9-bit bit sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitSeq(u16);

impl BitSeq {
    /// The all-`-1` channel.
    pub const ZEROS: BitSeq = BitSeq(0);
    /// The all-`+1` channel.
    pub const ONES: BitSeq = BitSeq(511);

    /// Construct from a raw value.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::InvalidSequence`] if `v >= 512`.
    pub fn new(v: u16) -> Result<Self> {
        if v < NUM_SEQUENCES as u16 {
            Ok(BitSeq(v))
        } else {
            Err(KcError::InvalidSequence(v))
        }
    }

    /// Construct without validation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v >= 512`.
    #[inline]
    pub fn new_unchecked(v: u16) -> Self {
        debug_assert!(v < NUM_SEQUENCES as u16);
        BitSeq(v)
    }

    /// The raw 9-bit value.
    #[inline]
    pub fn value(self) -> u16 {
        self.0
    }

    /// The ±1 value at kernel position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` exceed 2.
    pub fn sign_at(self, row: usize, col: usize) -> i32 {
        assert!(row < 3 && col < 3, "position out of 3x3 range");
        let p = row * 3 + col;
        if (self.0 >> (8 - p)) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Number of `+1` positions.
    #[inline]
    pub fn popcount(self) -> u32 {
        (self.0 as u32).count_ones()
    }

    /// Hamming distance to another sequence (number of differing
    /// positions; the clustering algorithm constrains this to 1).
    #[inline]
    pub fn hamming(self, other: BitSeq) -> u32 {
        ((self.0 ^ other.0) as u32).count_ones()
    }

    /// The 9 sequences at Hamming distance exactly 1.
    pub fn neighbors(self) -> impl Iterator<Item = BitSeq> {
        let v = self.0;
        (0..SEQ_BITS).map(move |b| BitSeq(v ^ (1 << b)))
    }

    /// All sequences within Hamming distance `radius` (excluding self),
    /// used by the Hamming-radius ablation.
    pub fn ball(self, radius: u32) -> Vec<BitSeq> {
        (0..NUM_SEQUENCES as u16)
            .map(BitSeq)
            .filter(|&s| s != self && self.hamming(s) <= radius)
            .collect()
    }

    /// Iterate over all 512 sequences.
    pub fn all() -> impl Iterator<Item = BitSeq> {
        (0..NUM_SEQUENCES as u16).map(BitSeq)
    }
}

impl fmt::Display for BitSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Binary for BitSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:09b}", self.0)
    }
}

impl From<BitSeq> for u16 {
    fn from(s: BitSeq) -> u16 {
        s.0
    }
}

impl TryFrom<u16> for BitSeq {
    type Error = KcError;

    fn try_from(v: u16) -> Result<Self> {
        BitSeq::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(BitSeq::ZEROS.value(), 0);
        assert_eq!(BitSeq::ONES.value(), 511);
        assert_eq!(BitSeq::ZEROS.popcount(), 0);
        assert_eq!(BitSeq::ONES.popcount(), 9);
    }

    #[test]
    fn validation() {
        assert!(BitSeq::new(511).is_ok());
        assert_eq!(BitSeq::new(512), Err(KcError::InvalidSequence(512)));
        assert!(BitSeq::try_from(700u16).is_err());
    }

    #[test]
    fn sign_at_natural_mapping() {
        // Sequence 256 = 100000000: only position (0,0) is +1.
        let s = BitSeq::new(256).unwrap();
        assert_eq!(s.sign_at(0, 0), 1);
        assert_eq!(s.sign_at(2, 2), -1);
        // Sequence 1: only position (2,2) is +1.
        let s = BitSeq::new(1).unwrap();
        assert_eq!(s.sign_at(2, 2), 1);
        assert_eq!(s.sign_at(0, 0), -1);
    }

    #[test]
    fn fig2_example() {
        // Fig. 2: 101110001 -> 369.
        let s = BitSeq::new(369).unwrap();
        let expect = [1, -1, 1, 1, 1, -1, -1, -1, 1];
        for (p, &e) in expect.iter().enumerate() {
            assert_eq!(s.sign_at(p / 3, p % 3), e);
        }
    }

    #[test]
    fn neighbors_are_distance_one() {
        let s = BitSeq::new(0b101010101).unwrap();
        let n: Vec<BitSeq> = s.neighbors().collect();
        assert_eq!(n.len(), 9);
        for x in &n {
            assert_eq!(s.hamming(*x), 1);
        }
        // All distinct.
        let mut vals: Vec<u16> = n.iter().map(|b| b.value()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 9);
    }

    #[test]
    fn ball_sizes() {
        let s = BitSeq::ZEROS;
        assert_eq!(s.ball(1).len(), 9); // C(9,1)
        assert_eq!(s.ball(2).len(), 9 + 36); // + C(9,2)
        assert_eq!(s.ball(9).len(), 511); // everything else
    }

    #[test]
    fn all_iterates_512() {
        assert_eq!(BitSeq::all().count(), 512);
    }

    #[test]
    fn display_and_binary_formats() {
        let s = BitSeq::new(5).unwrap();
        assert_eq!(s.to_string(), "5");
        assert_eq!(format!("{s:b}"), "000000101");
    }

    proptest! {
        #[test]
        fn hamming_is_metric(a in 0u16..512, b in 0u16..512, c in 0u16..512) {
            let (a, b, c) = (BitSeq(a), BitSeq(b), BitSeq(c));
            prop_assert_eq!(a.hamming(b), b.hamming(a));
            prop_assert_eq!(a.hamming(a), 0);
            prop_assert!(a.hamming(c) <= a.hamming(b) + b.hamming(c));
        }

        #[test]
        fn popcount_equals_positive_positions(v in 0u16..512) {
            let s = BitSeq(v);
            let positives = (0..3)
                .flat_map(|r| (0..3).map(move |c| (r, c)))
                .filter(|&(r, c)| s.sign_at(r, c) == 1)
                .count() as u32;
            prop_assert_eq!(s.popcount(), positives);
        }
    }
}
