//! Clustering: removing less frequent bit sequences (paper Sec. III-C).
//!
//! The algorithm: collect the `M` most common sequences of a block into a
//! set `st` and the `N` least common into `su`. For each `sa` in `su`, look
//! for a `sb` in `st` at Hamming distance 1 (at most one of the nine
//! weights flips, keeping the error introduced per inner product bounded by
//! ±2); when several qualify, pick the most frequent. Replace every
//! occurrence of `sa` by `sb`. Sequences with no qualifying neighbour stay
//! untouched — which is why the paper's post-clustering 12-bit node usage
//! drops to 0.6% rather than zero.

use crate::bitseq::BitSeq;
use crate::error::Result;
use crate::freq::FreqTable;
use bitnn::tensor::BitTensor;
use bitnn::weightgen::{read_sequence, write_sequence};

/// Parameters of the clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// `M`: size of the most-common candidate set `st`.
    pub m_common: usize,
    /// `N`: how many of the least common sequences to try to replace.
    pub n_remove: usize,
    /// Maximum Hamming distance for a substitution (the paper uses 1; the
    /// radius-2 ablation loosens it).
    pub max_distance: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            m_common: 64,
            n_remove: 256,
            max_distance: 1,
        }
    }
}

/// One planned substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Substitution {
    /// The rare sequence being removed.
    pub from: BitSeq,
    /// The common sequence replacing it.
    pub to: BitSeq,
    /// Hamming distance between the two.
    pub distance: u32,
}

/// A computed substitution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    substitutions: Vec<Substitution>,
    /// `map[s]` = the sequence `s` is rewritten to (identity when kept).
    map: Vec<u16>,
}

impl ClusterPlan {
    /// Compute the plan for a frequency table.
    pub fn build(freq: &FreqTable, config: &ClusterConfig) -> Self {
        let st: Vec<(BitSeq, u64)> = freq.top_k(config.m_common);
        let su = freq.bottom_k_present(config.n_remove);
        let st_set: Vec<BitSeq> = st.iter().map(|&(s, _)| s).collect();

        let mut map: Vec<u16> = (0..512).collect();
        let mut substitutions = Vec::new();
        for &(sa, _) in &su {
            // Never remove a sequence that is itself in the common set
            // (possible when fewer than M + N distinct sequences occur).
            if st_set.contains(&sa) {
                continue;
            }
            // Among candidates within the distance budget, prefer the
            // smallest distance, then the highest frequency (paper: "we
            // employ the bit sequence with the highest frequency").
            let mut best: Option<(u32, u64, BitSeq)> = None;
            for &(sb, count) in &st {
                let d = sa.hamming(sb);
                if d == 0 || d > config.max_distance {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bd, bc, _)) => d < bd || (d == bd && count > bc),
                };
                if better {
                    best = Some((d, count, sb));
                }
            }
            if let Some((d, _, sb)) = best {
                map[sa.value() as usize] = sb.value();
                substitutions.push(Substitution {
                    from: sa,
                    to: sb,
                    distance: d,
                });
            }
        }
        ClusterPlan { substitutions, map }
    }

    /// The substitutions in the order they were decided (rarest first).
    pub fn substitutions(&self) -> &[Substitution] {
        &self.substitutions
    }

    /// Number of sequences that will be rewritten.
    pub fn replaced(&self) -> usize {
        self.substitutions.len()
    }

    /// Where `seq` maps to under the plan (identity if kept).
    pub fn map(&self, seq: BitSeq) -> BitSeq {
        BitSeq::new_unchecked(self.map[seq.value() as usize])
    }

    /// Rewrite a `[K, C, 3, 3]` kernel under the plan.
    ///
    /// # Errors
    ///
    /// Returns [`crate::KcError::BadKernelShape`] for other shapes.
    pub fn apply_to_kernel(&self, kernel: &BitTensor) -> Result<BitTensor> {
        let shape = kernel.shape();
        if shape.len() != 4 || shape[2] != 3 || shape[3] != 3 {
            return Err(crate::KcError::BadKernelShape(shape.to_vec()));
        }
        let mut out = kernel.clone();
        for f in 0..shape[0] {
            for ch in 0..shape[1] {
                let seq = BitSeq::new_unchecked(read_sequence(kernel, f, ch));
                let mapped = self.map(seq);
                if mapped != seq {
                    write_sequence(&mut out, f, ch, mapped.value());
                }
            }
        }
        Ok(out)
    }

    /// Rewrite a frequency table under the plan (what the counts become
    /// after applying it to the kernel that produced `freq`).
    pub fn apply_to_freq(&self, freq: &FreqTable) -> FreqTable {
        let mut counts = vec![0u64; 512];
        for s in BitSeq::all() {
            counts[self.map(s).value() as usize] += freq.count(s);
        }
        FreqTable::from_counts(counts).expect("512 counts")
    }

    /// Fraction (percent) of total occurrences that get rewritten.
    pub fn moved_mass_pct(&self, freq: &FreqTable) -> f64 {
        if freq.total() == 0 {
            return 0.0;
        }
        let moved: u64 = self.substitutions.iter().map(|s| freq.count(s.from)).sum();
        moved as f64 / freq.total() as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnn::weightgen::SeqDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel_and_freq() -> (BitTensor, FreqTable) {
        let mut rng = StdRng::seed_from_u64(5);
        let kernel = SeqDistribution::for_block(1, 0).sample_kernel(64, 64, &mut rng);
        let freq = FreqTable::from_kernel(&kernel).unwrap();
        (kernel, freq)
    }

    #[test]
    fn substitutions_respect_distance_budget() {
        let (_, freq) = kernel_and_freq();
        let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
        assert!(
            plan.replaced() > 0,
            "skewed table should yield substitutions"
        );
        for s in plan.substitutions() {
            assert_eq!(s.from.hamming(s.to), s.distance);
            assert!(s.distance == 1);
        }
    }

    #[test]
    fn targets_come_from_the_common_set() {
        let (_, freq) = kernel_and_freq();
        let cfg = ClusterConfig::default();
        let plan = ClusterPlan::build(&freq, &cfg);
        let st: Vec<BitSeq> = freq.top_k(cfg.m_common).iter().map(|&(s, _)| s).collect();
        for s in plan.substitutions() {
            assert!(st.contains(&s.to), "{} not in top-M", s.to);
        }
    }

    #[test]
    fn clustering_increases_top_coverage() {
        // The whole point: post-clustering, the top-64 cover more mass.
        let (_, freq) = kernel_and_freq();
        let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
        let after = plan.apply_to_freq(&freq);
        assert_eq!(after.total(), freq.total());
        assert!(
            after.top_k_coverage_pct(64) > freq.top_k_coverage_pct(64),
            "{} vs {}",
            after.top_k_coverage_pct(64),
            freq.top_k_coverage_pct(64)
        );
        assert!(after.distinct() < freq.distinct());
    }

    #[test]
    fn kernel_rewrite_matches_freq_rewrite() {
        let (kernel, freq) = kernel_and_freq();
        let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
        let rewritten = plan.apply_to_kernel(&kernel).unwrap();
        let freq2 = FreqTable::from_kernel(&rewritten).unwrap();
        assert_eq!(freq2, plan.apply_to_freq(&freq));
    }

    #[test]
    fn rewritten_channels_are_within_distance_one() {
        let (kernel, freq) = kernel_and_freq();
        let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
        let rewritten = plan.apply_to_kernel(&kernel).unwrap();
        let shape = kernel.shape().to_vec();
        let mut changed = 0u64;
        for f in 0..shape[0] {
            for ch in 0..shape[1] {
                let a = BitSeq::new_unchecked(read_sequence(&kernel, f, ch));
                let b = BitSeq::new_unchecked(read_sequence(&rewritten, f, ch));
                assert!(a.hamming(b) <= 1, "channel moved {} bits", a.hamming(b));
                if a != b {
                    changed += 1;
                }
            }
        }
        assert!(changed > 0);
    }

    #[test]
    fn no_removals_when_n_is_zero() {
        let (_, freq) = kernel_and_freq();
        let plan = ClusterPlan::build(
            &freq,
            &ClusterConfig {
                n_remove: 0,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(plan.replaced(), 0);
        for s in BitSeq::all() {
            assert_eq!(plan.map(s), s);
        }
    }

    #[test]
    fn radius_two_replaces_at_least_as_many() {
        let (_, freq) = kernel_and_freq();
        let base = ClusterPlan::build(&freq, &ClusterConfig::default());
        let wide = ClusterPlan::build(
            &freq,
            &ClusterConfig {
                max_distance: 2,
                ..ClusterConfig::default()
            },
        );
        assert!(wide.replaced() >= base.replaced());
    }

    #[test]
    fn moved_mass_is_bounded_by_tail_mass() {
        // The N removed sequences are the rarest present ones; with the
        // trained-kernel support (~352 distinct) "remove 256" reaches into
        // the mid ranks, moving roughly the mass outside the top ~100
        // (paper Sec. VI: the 9-bit node usage collapses from 23% to 8%).
        let (_, freq) = kernel_and_freq();
        let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
        let moved = plan.moved_mass_pct(&freq);
        let top_m = freq.top_k_coverage_pct(ClusterConfig::default().m_common);
        assert!(moved > 0.0, "nothing moved");
        assert!(
            moved <= 100.0 - top_m + 1e-9,
            "moved {moved}% exceeds non-common mass {}%",
            100.0 - top_m
        );
        assert!((10.0..45.0).contains(&moved), "moved = {moved}%");
    }

    #[test]
    fn common_set_members_are_never_removed() {
        // Degenerate table where fewer than M + N sequences occur.
        let mut counts = vec![0u64; 512];
        counts[0] = 100;
        counts[256] = 1; // Hamming-1 from 0
        let freq = FreqTable::from_counts(counts).unwrap();
        let plan = ClusterPlan::build(
            &freq,
            &ClusterConfig {
                m_common: 8,
                n_remove: 8,
                max_distance: 1,
            },
        );
        // 256 is in the top-8 (only two present), so nothing is replaced.
        assert_eq!(plan.replaced(), 0);
    }
}
