//! Bit-sequence analysis of *activations* (paper Sec. I: "the number of
//! unique sequences representing a set of weights **or inputs** is
//! typically low").
//!
//! A binarized activation map also decomposes into 9-bit sequences: every
//! 3×3 window of one channel is a sequence under the natural mapping.
//! The paper compresses only kernels (they are static, so the Huffman
//! tree can be built offline), but measuring the activation-side skew
//! validates the broader observation and bounds what an online scheme —
//! the natural future-work extension — could achieve.

use crate::bitseq::BitSeq;
use crate::error::{KcError, Result};
use crate::freq::FreqTable;
use bitnn::tensor::BitTensor;

/// Count the 9-bit sequences of every (overlapping) 3×3 window of every
/// channel of a binarized activation tensor `[N, C, H, W]`.
///
/// Windows are taken at stride 1 without padding, mirroring how a 3×3
/// convolution consumes the activations.
///
/// # Errors
///
/// Returns [`KcError::BadKernelShape`] if `acts` is not 4-D or is
/// spatially smaller than 3×3.
pub fn activation_freq(acts: &BitTensor) -> Result<FreqTable> {
    let shape = acts.shape();
    if shape.len() != 4 || shape[2] < 3 || shape[3] < 3 {
        return Err(KcError::BadKernelShape(shape.to_vec()));
    }
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    let mut freq = FreqTable::new();
    for img in 0..n {
        for ch in 0..c {
            for y in 0..h - 2 {
                for x in 0..w - 2 {
                    let mut seq = 0u16;
                    for p in 0..9 {
                        let (dy, dx) = (p / 3, p % 3);
                        if acts.get(acts.idx4(img, ch, y + dy, x + dx)) {
                            seq |= 1 << (8 - p);
                        }
                    }
                    freq.record(BitSeq::new_unchecked(seq));
                }
            }
        }
    }
    Ok(freq)
}

/// Summary of the activation-side compressibility of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActSeqReport {
    /// Windows analyzed.
    pub windows: u64,
    /// Distinct sequences observed.
    pub distinct: usize,
    /// Top-64 coverage in percent.
    pub top64_pct: f64,
    /// Top-256 coverage in percent.
    pub top256_pct: f64,
    /// Empirical entropy in bits per sequence (9 = incompressible).
    pub entropy_bits: f64,
}

/// Build the report for a binarized activation tensor.
///
/// # Errors
///
/// Propagates [`activation_freq`] errors.
pub fn activation_report(acts: &BitTensor) -> Result<ActSeqReport> {
    let freq = activation_freq(acts)?;
    Ok(ActSeqReport {
        windows: freq.total(),
        distinct: freq.distinct(),
        top64_pct: freq.top_k_coverage_pct(64),
        top256_pct: freq.top_k_coverage_pct(256),
        entropy_bits: freq.entropy_bits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_activations_are_one_sequence() {
        let mut acts = BitTensor::zeros(&[1, 2, 5, 5]);
        for i in 0..acts.len() {
            acts.set(i, true);
        }
        let freq = activation_freq(&acts).unwrap();
        assert_eq!(freq.total(), 2 * 3 * 3); // (5-2)^2 windows per channel
        assert_eq!(freq.distinct(), 1);
        assert_eq!(freq.count(BitSeq::ONES), 18);
    }

    #[test]
    fn window_extraction_uses_natural_mapping() {
        // Set only pixel (0,0): the window at (0,0) sees it at position
        // (0,0) = MSB -> sequence 256.
        let mut acts = BitTensor::zeros(&[1, 1, 3, 3]);
        let i = acts.idx4(0, 0, 0, 0);
        acts.set(i, true);
        let freq = activation_freq(&acts).unwrap();
        assert_eq!(freq.count(BitSeq::new(256).unwrap()), 1);
        assert_eq!(freq.total(), 1);
    }

    #[test]
    fn overlapping_windows_shift_the_sequence() {
        // A single set pixel at (1,1) of a 4x4 map appears in 4 windows
        // at different positions.
        let mut acts = BitTensor::zeros(&[1, 1, 4, 4]);
        let i = acts.idx4(0, 0, 1, 1);
        acts.set(i, true);
        let freq = activation_freq(&acts).unwrap();
        assert_eq!(freq.total(), 4);
        assert_eq!(freq.distinct(), 4);
        // Window origin (0,0) sees the pixel at (1,1) -> bit position 4.
        assert_eq!(freq.count(BitSeq::new(1 << 4).unwrap()), 1);
    }

    #[test]
    fn rejects_small_or_non_4d() {
        assert!(activation_freq(&BitTensor::zeros(&[1, 1, 2, 5])).is_err());
        assert!(activation_freq(&BitTensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn smooth_activations_are_compressible() {
        // Block-structured activations (low spatial frequency) should
        // concentrate on few sequences; that's the paper's observation.
        let mut acts = BitTensor::zeros(&[1, 4, 16, 16]);
        for ch in 0..4 {
            for y in 0..16 {
                for x in 0..16 {
                    if (y / 8 + x / 8 + ch) % 2 == 0 {
                        let i = acts.idx4(0, ch, y, x);
                        acts.set(i, true);
                    }
                }
            }
        }
        let report = activation_report(&acts).unwrap();
        assert!(report.entropy_bits < 4.0, "entropy {}", report.entropy_bits);
        assert!(report.top64_pct > 90.0);
        assert!(report.distinct < 64);
    }
}
