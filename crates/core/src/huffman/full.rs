//! Canonical full Huffman coding over the 512 sequences.
//!
//! This is the "unsimplified" baseline: optimal prefix codes built from the
//! exact frequency table. The paper argues (Sec. III-B) that decoding a
//! full Huffman stream at high throughput needs either big lookup tables or
//! complex hardware, and that the simplified tree is a better
//! simplicity/compression trade-off; the ablation bench quantifies the gap
//! using this implementation.

use crate::bitseq::{BitSeq, NUM_SEQUENCES};
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{KcError, Result};
use crate::freq::FreqTable;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maximum supported code length (fits the `u32` bit-stream codes).
pub const MAX_CODE_LEN: u8 = 32;

/// A canonical Huffman codebook over bit sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullHuffman {
    /// Code length per sequence value (0 = unassigned).
    lengths: Vec<u8>,
    /// Canonical code per sequence value.
    codes: Vec<u32>,
    /// Decode tables: for each length, (first_code, first_symbol_index)
    /// into `sorted_symbols`.
    first_code: Vec<u32>,
    first_index: Vec<usize>,
    /// Symbols sorted by (length, value) — canonical order.
    sorted_symbols: Vec<BitSeq>,
    max_len: u8,
}

impl FullHuffman {
    /// Build an optimal prefix code for the sequences present in `freq`.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::InvalidTreeConfig`] if the table is empty or a
    /// code would exceed [`MAX_CODE_LEN`] bits.
    pub fn build(freq: &FreqTable) -> Result<Self> {
        let mut lengths = vec![0u8; NUM_SEQUENCES];
        let present: Vec<(u16, u64)> = (0..NUM_SEQUENCES as u16)
            .filter(|&s| freq.count(BitSeq::new_unchecked(s)) > 0)
            .map(|s| (s, freq.count(BitSeq::new_unchecked(s))))
            .collect();
        match present.len() {
            0 => {
                return Err(KcError::InvalidTreeConfig(
                    "cannot build a Huffman code from an empty table".into(),
                ))
            }
            1 => {
                // Degenerate: a single symbol still needs one bit so the
                // stream has codewords to count.
                lengths[present[0].0 as usize] = 1;
            }
            _ => {
                huffman_lengths(&present, &mut lengths)?;
            }
        }
        Self::from_lengths(lengths)
    }

    /// Build the canonical code from per-symbol lengths.
    fn from_lengths(lengths: Vec<u8>) -> Result<Self> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > MAX_CODE_LEN {
            return Err(KcError::InvalidTreeConfig(format!(
                "code length {max_len} exceeds {MAX_CODE_LEN}"
            )));
        }
        // Canonical order: sort symbols by (length, value).
        let mut sorted_symbols: Vec<BitSeq> = (0..NUM_SEQUENCES as u16)
            .filter(|&s| lengths[s as usize] > 0)
            .map(BitSeq::new_unchecked)
            .collect();
        sorted_symbols.sort_by_key(|s| (lengths[s.value() as usize], s.value()));

        let mut bl_count = vec![0u32; max_len as usize + 1];
        for &s in &sorted_symbols {
            bl_count[lengths[s.value() as usize] as usize] += 1;
        }
        // First canonical code of each length.
        let mut first_code = vec![0u32; max_len as usize + 2];
        let mut code = 0u32;
        for len in 1..=max_len as usize {
            code = (code + bl_count[len - 1]) << 1;
            first_code[len] = code;
        }
        // First symbol index (into sorted_symbols) of each length.
        let mut first_index = vec![0usize; max_len as usize + 2];
        let mut idx = 0usize;
        for len in 1..=max_len as usize {
            first_index[len] = idx;
            idx += bl_count[len] as usize;
        }
        // Assign codes.
        let mut codes = vec![0u32; NUM_SEQUENCES];
        let mut next = first_code.clone();
        for &s in &sorted_symbols {
            let len = lengths[s.value() as usize] as usize;
            codes[s.value() as usize] = next[len];
            next[len] += 1;
        }
        Ok(FullHuffman {
            lengths,
            codes,
            first_code,
            first_index,
            sorted_symbols,
            max_len,
        })
    }

    /// Code length of `seq` (0 if unassigned).
    pub fn code_len(&self, seq: BitSeq) -> u8 {
        self.lengths[seq.value() as usize]
    }

    /// Longest code length in the book.
    pub fn max_code_len(&self) -> u8 {
        self.max_len
    }

    /// Number of symbols holding a code.
    pub fn assigned(&self) -> usize {
        self.sorted_symbols.len()
    }

    /// Append the code for `seq`.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::Unencodable`] if the sequence has no code.
    pub fn encode(&self, seq: BitSeq, out: &mut BitWriter) -> Result<()> {
        let len = self.lengths[seq.value() as usize];
        if len == 0 {
            return Err(KcError::Unencodable(seq.value()));
        }
        out.write_bits(self.codes[seq.value() as usize], len);
        Ok(())
    }

    /// Decode one sequence using canonical first-code scanning.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] on truncation or invalid codes.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<BitSeq> {
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | reader.read_bit()?;
            let count = self.count_at(len);
            if count > 0 && code >= self.first_code[len] && code < self.first_code[len] + count {
                let offset = (code - self.first_code[len]) as usize;
                return Ok(self.sorted_symbols[self.first_index[len] + offset]);
            }
        }
        Err(KcError::CorruptStream("no codeword matched".into()))
    }

    fn count_at(&self, len: usize) -> u32 {
        let next_start = if len == self.max_len as usize {
            self.sorted_symbols.len()
        } else {
            self.first_index[len + 1]
        };
        (next_start - self.first_index[len]) as u32
    }

    /// Total compressed bits for a payload with the given counts.
    pub fn compressed_bits(&self, freq: &FreqTable) -> u64 {
        (0..NUM_SEQUENCES as u16)
            .map(|s| freq.count(BitSeq::new_unchecked(s)) * self.lengths[s as usize] as u64)
            .sum()
    }

    /// Expected bits per sequence under `freq`.
    pub fn avg_bits(&self, freq: &FreqTable) -> f64 {
        if freq.total() == 0 {
            0.0
        } else {
            self.compressed_bits(freq) as f64 / freq.total() as f64
        }
    }
}

/// Standard heap-based Huffman: computes code lengths into `lengths`.
fn huffman_lengths(present: &[(u16, u64)], lengths: &mut [u8]) -> Result<()> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        /// Tie-break for determinism.
        serial: u32,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u16),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.weight
                .cmp(&other.weight)
                .then(self.serial.cmp(&other.serial))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    let mut serial = 0u32;
    for &(s, w) in present {
        heap.push(Reverse(Node {
            weight: w,
            serial,
            kind: NodeKind::Leaf(s),
        }));
        serial += 1;
    }
    while heap.len() > 1 {
        let a = heap.pop().unwrap().0;
        let b = heap.pop().unwrap().0;
        heap.push(Reverse(Node {
            weight: a.weight + b.weight,
            serial,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        }));
        serial += 1;
    }
    let root = heap.pop().unwrap().0;
    // Walk the tree assigning depths.
    fn walk(node: &Node, depth: u8, lengths: &mut [u8]) -> Result<()> {
        match &node.kind {
            NodeKind::Leaf(s) => {
                if depth > MAX_CODE_LEN {
                    return Err(KcError::InvalidTreeConfig(format!(
                        "code length {depth} exceeds {MAX_CODE_LEN}"
                    )));
                }
                lengths[*s as usize] = depth.max(1);
                Ok(())
            }
            NodeKind::Internal(a, b) => {
                walk(a, depth + 1, lengths)?;
                walk(b, depth + 1, lengths)
            }
        }
    }
    walk(&root, 0, lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnn::weightgen::SeqDistribution;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_freq() -> FreqTable {
        let mut rng = StdRng::seed_from_u64(2);
        let kernel = SeqDistribution::for_block(2, 0).sample_kernel(64, 64, &mut rng);
        FreqTable::from_kernel(&kernel).unwrap()
    }

    #[test]
    fn empty_table_is_error() {
        assert!(FullHuffman::build(&FreqTable::new()).is_err());
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let mut f = FreqTable::new();
        f.record(BitSeq::ZEROS);
        let h = FullHuffman::build(&f).unwrap();
        assert_eq!(h.code_len(BitSeq::ZEROS), 1);
        assert_eq!(h.assigned(), 1);
        let mut w = BitWriter::new();
        h.encode(BitSeq::ZEROS, &mut w).unwrap();
        let total = w.bits_written();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_limit(&bytes, total);
        assert_eq!(h.decode(&mut r).unwrap(), BitSeq::ZEROS);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let mut f = FreqTable::new();
        f.record(BitSeq::ZEROS);
        for _ in 0..10 {
            f.record(BitSeq::ONES);
        }
        let h = FullHuffman::build(&f).unwrap();
        assert_eq!(h.code_len(BitSeq::ZEROS), 1);
        assert_eq!(h.code_len(BitSeq::ONES), 1);
    }

    #[test]
    fn kraft_inequality_holds() {
        let h = FullHuffman::build(&skewed_freq()).unwrap();
        let kraft: f64 = BitSeq::all()
            .filter(|&s| h.code_len(s) > 0)
            .map(|s| 2.0f64.powi(-(h.code_len(s) as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn optimality_beats_simplified_and_entropy_bound() {
        let freq = skewed_freq();
        let full = FullHuffman::build(&freq).unwrap();
        let simp = crate::huffman::SimplifiedTree::build(&freq, crate::TreeConfig::paper());
        let h = freq.entropy_bits();
        let avg_full = full.avg_bits(&freq);
        let avg_simp = simp.avg_bits(&freq);
        assert!(avg_full >= h - 1e-9, "below entropy: {avg_full} < {h}");
        assert!(avg_full <= h + 1.0, "Huffman within 1 bit of entropy");
        assert!(
            avg_full <= avg_simp + 1e-9,
            "full must not lose to simplified"
        );
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let freq = skewed_freq();
        let h = FullHuffman::build(&freq).unwrap();
        let top = freq.top_k(1)[0].0;
        let rare = freq.bottom_k_present(1)[0].0;
        assert!(h.code_len(top) <= h.code_len(rare));
    }

    #[test]
    fn unassigned_symbol_unencodable() {
        let mut f = FreqTable::new();
        f.record(BitSeq::ZEROS);
        f.record(BitSeq::ONES);
        let h = FullHuffman::build(&f).unwrap();
        let mut w = BitWriter::new();
        assert!(matches!(
            h.encode(BitSeq::new(7).unwrap(), &mut w),
            Err(KcError::Unencodable(7))
        ));
    }

    #[test]
    fn stream_roundtrip() {
        let freq = skewed_freq();
        let h = FullHuffman::build(&freq).unwrap();
        let symbols: Vec<BitSeq> = freq
            .sorted_desc()
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(s, _)| s)
            .collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            h.encode(s, &mut w).unwrap();
        }
        let total = w.bits_written();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_limit(&bytes, total);
        for &s in &symbols {
            assert_eq!(h.decode(&mut r).unwrap(), s);
        }
        assert_eq!(r.remaining(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn roundtrip_arbitrary_counts(
            counts in proptest::collection::vec(0u64..50, 512),
            payload in proptest::collection::vec(0usize..512, 1..200)
        ) {
            let mut counts = counts;
            // Ensure at least two symbols are present.
            counts[0] = counts[0].max(1);
            counts[511] = counts[511].max(1);
            let freq = FreqTable::from_counts(counts.clone()).unwrap();
            let h = FullHuffman::build(&freq).unwrap();
            // Encode a payload of present symbols only.
            let present: Vec<u16> = (0..512u16).filter(|&s| counts[s as usize] > 0).collect();
            let symbols: Vec<BitSeq> = payload
                .iter()
                .map(|&i| BitSeq::new_unchecked(present[i % present.len()]))
                .collect();
            let mut w = BitWriter::new();
            for &s in &symbols {
                h.encode(s, &mut w).unwrap();
            }
            let total = w.bits_written();
            let bytes = w.into_bytes();
            let mut r = BitReader::with_limit(&bytes, total);
            for &s in &symbols {
                prop_assert_eq!(h.decode(&mut r).unwrap(), s);
            }
        }
    }
}
