//! The simplified Huffman tree (paper Fig. 4 and Sec. VI).
//!
//! The tree is a chain: node `i` has the prefix `1…1 0` (`i` ones then a
//! zero), so prefixes have lengths 1, 2, 3, 4 for four nodes. Each node
//! owns a table of up to `capacity` sequences; a codeword is the node
//! prefix followed by a fixed-width index into that table. With the
//! paper's capacities (32, 64, 64, 256) the code lengths are
//! `1+5 = 6`, `2+6 = 8`, `3+6 = 9`, `4+8 = 12` bits — the values in
//! Sec. VI.
//!
//! Sequences are assigned to nodes by descending frequency: the 32 most
//! common go into node 0 (6-bit codes) and so on. If more distinct
//! sequences occur than the configured capacity (512 can occur but the
//! paper's tables only hold 416), the last node's index widens by however
//! many bits are needed — the hardware's 1 KB uncompressed table
//! (Table IV) holds all 512 two-byte entries, so this costs no extra
//! hardware.

use crate::bitseq::{BitSeq, NUM_SEQUENCES};
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{KcError, Result};
use crate::freq::FreqTable;

/// Node capacities of the simplified tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeConfig {
    capacities: Vec<usize>,
}

impl TreeConfig {
    /// The paper's configuration: 4 nodes of 32, 64, 64, 256 sequences.
    pub fn paper() -> Self {
        TreeConfig {
            capacities: vec![32, 64, 64, 256],
        }
    }

    /// Custom node capacities.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::InvalidTreeConfig`] unless there are 2..=8 nodes
    /// and every capacity is a power of two.
    pub fn with_capacities(capacities: Vec<usize>) -> Result<Self> {
        if !(2..=8).contains(&capacities.len()) {
            return Err(KcError::InvalidTreeConfig(format!(
                "need 2..=8 nodes, got {}",
                capacities.len()
            )));
        }
        for &c in &capacities {
            if c == 0 || !c.is_power_of_two() {
                return Err(KcError::InvalidTreeConfig(format!(
                    "capacity {c} is not a power of two"
                )));
            }
        }
        Ok(TreeConfig { capacities })
    }

    /// Node capacities.
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.capacities.len()
    }

    /// Prefix length of node `i` (the chain shape: `i` ones + one zero).
    pub fn prefix_len(&self, i: usize) -> u8 {
        (i + 1) as u8
    }

    /// Index width of node `i` at its configured capacity.
    pub fn index_bits(&self, i: usize) -> u8 {
        self.capacities[i].trailing_zeros() as u8
    }

    /// Code length of node `i` at its configured capacity.
    pub fn code_len(&self, i: usize) -> u8 {
        self.prefix_len(i) + self.index_bits(i)
    }

    /// Total configured capacity.
    pub fn total_capacity(&self) -> usize {
        self.capacities.iter().sum()
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig::paper()
    }
}

/// A built simplified-Huffman codebook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplifiedTree {
    config: TreeConfig,
    /// Per node: the sequences stored in its table, in index order.
    tables: Vec<Vec<BitSeq>>,
    /// Actual index width per node (the last node may be widened).
    index_bits: Vec<u8>,
    /// `lookup[seq] = Some((node, index))`.
    lookup: Vec<Option<(u8, u16)>>,
}

impl SimplifiedTree {
    /// Assign sequences to nodes by descending frequency.
    ///
    /// Every sequence with a nonzero count receives a code. Sequences that
    /// never occur receive none (encoding one of them later yields
    /// [`KcError::Unencodable`]).
    pub fn build(freq: &FreqTable, config: TreeConfig) -> Self {
        let present: Vec<BitSeq> = freq
            .sorted_desc()
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(s, _)| s)
            .collect();
        Self::from_ranked(&present, config)
    }

    /// Build from an explicit descending-frequency ranking (the first
    /// entries get the shortest codes).
    pub fn from_ranked(ranked: &[BitSeq], config: TreeConfig) -> Self {
        let n = config.nodes();
        let mut tables: Vec<Vec<BitSeq>> = vec![Vec::new(); n];
        let mut it = ranked.iter().copied();
        for (i, table) in tables.iter_mut().enumerate() {
            let cap = config.capacities[i];
            if i + 1 < n {
                table.extend(it.by_ref().take(cap));
            } else {
                // Last node absorbs everything left (auto-widening).
                table.extend(it.by_ref());
            }
        }
        let mut index_bits: Vec<u8> = (0..n).map(|i| config.index_bits(i)).collect();
        let last = n - 1;
        if tables[last].len() > config.capacities[last] {
            index_bits[last] = (tables[last].len() as u32)
                .next_power_of_two()
                .trailing_zeros() as u8;
        }
        let mut lookup = vec![None; NUM_SEQUENCES];
        for (node, table) in tables.iter().enumerate() {
            for (idx, seq) in table.iter().enumerate() {
                lookup[seq.value() as usize] = Some((node as u8, idx as u16));
            }
        }
        SimplifiedTree {
            config,
            tables,
            index_bits,
            lookup,
        }
    }

    /// The configuration this tree was built with.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// The sequences stored in node `i`'s table.
    pub fn table(&self, i: usize) -> &[BitSeq] {
        &self.tables[i]
    }

    /// Actual code length of node `i` (prefix + possibly widened index).
    pub fn code_len(&self, i: usize) -> u8 {
        self.config.prefix_len(i) + self.index_bits[i]
    }

    /// The per-node code lengths — the hardware length table (Fig. 6).
    pub fn length_table(&self) -> Vec<u8> {
        (0..self.config.nodes()).map(|i| self.code_len(i)).collect()
    }

    /// Total sequences holding a code.
    pub fn assigned(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// The node and table index of `seq`, if assigned.
    pub fn assignment(&self, seq: BitSeq) -> Option<(u8, u16)> {
        self.lookup[seq.value() as usize]
    }

    /// The codeword for `seq` as `(bits, length)`.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::Unencodable`] if the sequence has no code.
    pub fn code_for(&self, seq: BitSeq) -> Result<(u32, u8)> {
        let (node, idx) = self
            .assignment(seq)
            .ok_or(KcError::Unencodable(seq.value()))?;
        let node = node as usize;
        let prefix_len = self.config.prefix_len(node);
        // Prefix: `node` ones followed by a zero.
        let prefix: u32 = ((1u32 << node) - 1) << 1; // e.g. node 2 -> 0b110
        let ibits = self.index_bits[node];
        let code = (prefix << ibits) | idx as u32;
        Ok((code, prefix_len + ibits))
    }

    /// Append the code for `seq` to a bit stream.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::Unencodable`] if the sequence has no code.
    pub fn encode(&self, seq: BitSeq, out: &mut BitWriter) -> Result<()> {
        let (code, len) = self.code_for(seq)?;
        out.write_bits(code, len);
        Ok(())
    }

    /// Decode one sequence from a bit stream.
    ///
    /// This mirrors the hardware stream parser: scan prefix bits to find
    /// the node, read the node's code length from the length table, then
    /// use the remaining bits to address the uncompressed table.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] on a truncated stream, an
    /// invalid prefix, or an index beyond the node's table.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<BitSeq> {
        let n = self.config.nodes();
        let mut node = n; // sentinel
        for i in 0..n {
            if reader.read_bit()? == 0 {
                node = i;
                break;
            }
            if i == n - 1 {
                return Err(KcError::CorruptStream(
                    "prefix of all ones matches no node".into(),
                ));
            }
        }
        debug_assert!(node < n);
        let idx = reader.read_bits(self.index_bits[node])? as usize;
        self.tables[node]
            .get(idx)
            .copied()
            .ok_or_else(|| KcError::CorruptStream(format!("index {idx} beyond node {node} table")))
    }

    /// Total compressed size in bits of a payload with the given counts.
    pub fn compressed_bits(&self, freq: &FreqTable) -> u64 {
        let mut bits = 0u64;
        for (node, table) in self.tables.iter().enumerate() {
            let len = self.code_len(node) as u64;
            for &seq in table {
                bits += freq.count(seq) * len;
            }
        }
        bits
    }

    /// Expected code length in bits per sequence under `freq`.
    pub fn avg_bits(&self, freq: &FreqTable) -> f64 {
        if freq.total() == 0 {
            0.0
        } else {
            self.compressed_bits(freq) as f64 / freq.total() as f64
        }
    }

    /// Mass (in percent) encoded by each node under `freq` — the paper
    /// quotes these as "frequency of use of the stored sequences using
    /// 6/8/9/12 bits".
    pub fn node_usage_pct(&self, freq: &FreqTable) -> Vec<f64> {
        let total = freq.total();
        self.tables
            .iter()
            .map(|table| {
                if total == 0 {
                    0.0
                } else {
                    table.iter().map(|&s| freq.count(s)).sum::<u64>() as f64 / total as f64 * 100.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnn::weightgen::SeqDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_freq() -> FreqTable {
        let mut rng = StdRng::seed_from_u64(1);
        let kernel = SeqDistribution::for_block(1, 0).sample_kernel(64, 64, &mut rng);
        FreqTable::from_kernel(&kernel).unwrap()
    }

    #[test]
    fn paper_config_code_lengths() {
        let c = TreeConfig::paper();
        assert_eq!(c.nodes(), 4);
        // Sec. VI: 6, 8, 9, 12 bits.
        assert_eq!(c.code_len(0), 6);
        assert_eq!(c.code_len(1), 8);
        assert_eq!(c.code_len(2), 9);
        assert_eq!(c.code_len(3), 12);
        assert_eq!(c.total_capacity(), 416);
    }

    #[test]
    fn config_validation() {
        assert!(TreeConfig::with_capacities(vec![32, 64]).is_ok());
        assert!(TreeConfig::with_capacities(vec![32]).is_err());
        assert!(TreeConfig::with_capacities(vec![3, 64]).is_err());
        assert!(TreeConfig::with_capacities(vec![0, 64]).is_err());
        assert!(TreeConfig::with_capacities(vec![2; 9]).is_err());
    }

    #[test]
    fn most_frequent_gets_shortest_code() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        let top = freq.top_k(1)[0].0;
        let (_, len) = tree.code_for(top).unwrap();
        assert_eq!(len, 6);
        // A rare-but-present sequence lands in a later node.
        let rare = freq.bottom_k_present(1)[0].0;
        let (_, rare_len) = tree.code_for(rare).unwrap();
        assert!(rare_len > 6);
    }

    #[test]
    fn prefixes_match_chain_shape() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        // Node 0 codes start with 0; node 1 with 10; etc.
        for node in 0..4 {
            if tree.table(node).is_empty() {
                continue;
            }
            let seq = tree.table(node)[0];
            let (code, len) = tree.code_for(seq).unwrap();
            let prefix_len = node + 1;
            let prefix = code >> (len - prefix_len as u8);
            let expect = ((1u32 << node) - 1) << 1;
            assert_eq!(prefix, expect, "node {node}");
        }
    }

    #[test]
    fn roundtrip_every_assigned_sequence() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        let mut w = BitWriter::new();
        let present: Vec<BitSeq> = freq
            .sorted_desc()
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(s, _)| s)
            .collect();
        for &s in &present {
            tree.encode(s, &mut w).unwrap();
        }
        let total = w.bits_written();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_limit(&bytes, total);
        for &s in &present {
            assert_eq!(tree.decode(&mut r).unwrap(), s);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn auto_widening_when_all_512_present() {
        let freq = FreqTable::from_counts((1..=512u64).collect()).unwrap();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        assert_eq!(tree.assigned(), 512);
        // Last node holds 512 - 160 = 352 entries -> 9 index bits -> 13.
        assert_eq!(tree.table(3).len(), 352);
        assert_eq!(tree.code_len(3), 4 + 9);
        // All other nodes keep their configured lengths.
        assert_eq!(tree.length_table(), vec![6, 8, 9, 13]);
        // Round-trip still works across the widened node.
        let mut w = BitWriter::new();
        for s in BitSeq::all() {
            tree.encode(s, &mut w).unwrap();
        }
        let total = w.bits_written();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_limit(&bytes, total);
        for s in BitSeq::all() {
            assert_eq!(tree.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn unassigned_sequence_is_unencodable() {
        let mut freq = FreqTable::new();
        freq.record(BitSeq::ZEROS);
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        assert!(matches!(
            tree.code_for(BitSeq::ONES),
            Err(KcError::Unencodable(511))
        ));
    }

    #[test]
    fn all_ones_prefix_is_corrupt() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        let bytes = [0xFFu8, 0xFF];
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            tree.decode(&mut r),
            Err(KcError::CorruptStream(_))
        ));
    }

    #[test]
    fn truncated_stream_is_corrupt() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        let top = freq.top_k(1)[0].0;
        let mut w = BitWriter::new();
        tree.encode(top, &mut w).unwrap();
        let bytes = w.into_bytes();
        // Cut the stream one bit short of the 6-bit code.
        let mut r = BitReader::with_limit(&bytes, 5);
        assert!(matches!(
            tree.decode(&mut r),
            Err(KcError::CorruptStream(_))
        ));
    }

    #[test]
    fn avg_bits_below_9_for_skewed_input() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        let avg = tree.avg_bits(&freq);
        assert!(avg < 9.0, "avg = {avg}");
        assert!(avg > freq.entropy_bits(), "cannot beat entropy");
        // Paper: Encoding ratio 1.18-1.25 -> avg bits 7.2-7.6.
        let ratio = 9.0 / avg;
        assert!((1.1..1.4).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn node_usage_sums_to_100_when_all_assigned() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        let usage = tree.node_usage_pct(&freq);
        let sum: f64 = usage.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9, "sum = {sum}");
        // Node 0 (top-32) should carry the largest share (paper: ~46%).
        assert!(usage[0] > usage[3], "{usage:?}");
    }

    #[test]
    fn compressed_bits_consistent_with_encoding() {
        let freq = skewed_freq();
        let tree = SimplifiedTree::build(&freq, TreeConfig::paper());
        // Encode every occurrence (not just distinct): simulate by value.
        let mut w = BitWriter::new();
        for (seq, count) in freq.sorted_desc() {
            for _ in 0..count {
                tree.encode(seq, &mut w).unwrap();
            }
        }
        assert_eq!(w.bits_written() as u64, tree.compressed_bits(&freq));
    }
}
