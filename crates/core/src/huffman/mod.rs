//! Huffman coding of bit sequences.
//!
//! Two coders are provided:
//!
//! * [`SimplifiedTree`] — the paper's contribution (Fig. 4): a chain-shaped
//!   tree with a handful of nodes, each node being a *table* of sequences.
//!   A codeword is `node prefix ++ table index`, so decoding needs one
//!   prefix scan and one table lookup — cheap enough for the hardware
//!   decoding unit.
//! * [`full::FullHuffman`] — a textbook canonical Huffman coder over the
//!   512 symbols, the ablation baseline showing what compression the
//!   simplified tree gives up for its simplicity.

pub mod full;
pub mod simplified;

pub use full::FullHuffman;
pub use simplified::{SimplifiedTree, TreeConfig};
