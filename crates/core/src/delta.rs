//! Delta containers: `.bkcp` patches between two model containers.
//!
//! Shipping model updates to a fleet should not mean re-sending the
//! whole container when most kernels are unchanged. A patch produced by
//! [`diff_containers`] records, per compressible conv of the *target*
//! model (keyed by its graph node id):
//!
//! * **SAME** — the kernel is byte-identical to a base record,
//!   referenced by index and pinned by digest;
//! * **EDITS** — the kernel differs in a few channel sequences; the
//!   entry stores the target's tree capacities plus a sparse edit list
//!   (Hamming-1 edits as a single bit index, anything else as the full
//!   9-bit sequence), and the applier rebuilds the record by decoding
//!   the base kernel, applying the edits, and recompressing;
//! * **FULL** — the complete record bytes, for new or heavily changed
//!   kernels.
//!
//! [`apply_patch`] reproduces the target container **bit-exactly**: the
//! diff side self-verifies every EDITS reconstruction (falling back to
//! FULL when recompression would not reproduce the record), and the
//! apply side re-checks every rebuilt record against its stored digest
//! plus the final assembled v3 container against the patch's target
//! digest. The patch file itself carries a whole-file checksum that is
//! verified before anything else, so a corrupted patch is rejected as a
//! typed [`KcError::IntegrityViolation`], never applied.
//!
//! ```text
//! +--------+---------+--------+---------------+---------+-----------+--------+----------+
//! | magic  | version | base   | target graph  | entry   | entries   | target | patch    |
//! | "BKCP" | 0x0301  | digest | section       | count   | (tagged)  | digest | checksum |
//! |        |  u16    |  16 B  | (spec bytes)  |  u32    |           |  16 B  |   16 B   |
//! +--------+---------+--------+---------------+---------+-----------+--------+----------+
//! ```
//!
//! The version constant 0x0301 is deliberately outside the model
//! container's version space {1, 2, 3}: a single-byte corruption that
//! turns the `BKCP` magic into `BKCM` makes the file an unsupported
//! model version, never a parsable container.

use crate::bitseq::BitSeq;
use crate::codec::KernelCodec;
use crate::container::{
    assemble_v3, check_spec_kernels, read_container, read_graph_spec, read_model_container,
    write_container, write_graph_spec, Container,
};
use crate::digest::{Digest, DIGEST_LEN};
use crate::error::{KcError, Result};
use crate::huffman::TreeConfig;
use bitnn::weightgen::{read_sequence, write_sequence};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Patch file magic bytes.
pub const PATCH_MAGIC: &[u8; 4] = b"BKCP";

/// Patch format version. Outside the model container's {1, 2, 3} space
/// so a magic-byte corruption can never make a patch parse as a model.
pub const PATCH_VERSION: u16 = 0x0301;

/// Entry tags.
const TAG_SAME: u8 = 0;
const TAG_EDITS: u8 = 1;
const TAG_FULL: u8 = 2;

/// Edit kinds inside an EDITS entry.
const EDIT_BITFLIP: u8 = 0;
const EDIT_REPLACE: u8 = 1;

/// How a patch encodes each target kernel (for `bnnkc diff` reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchStats {
    /// Kernels referenced unchanged from the base.
    pub same: usize,
    /// Kernels rebuilt from a sparse edit list.
    pub edits: usize,
    /// Kernels shipped as full records.
    pub full: usize,
}

/// One sparse channel edit: the sequence at flat position
/// `filter * channels + channel` changes.
#[derive(Debug, Clone, Copy)]
struct Edit {
    flat: u32,
    new_seq: u16,
}

/// Compute the sparse edit list between two decoded kernels of equal
/// geometry.
fn channel_edits(
    base: &bitnn::tensor::BitTensor,
    new: &bitnn::tensor::BitTensor,
    filters: usize,
    channels: usize,
) -> Vec<Edit> {
    let mut edits = Vec::new();
    for f in 0..filters {
        for ch in 0..channels {
            let old = read_sequence(base, f, ch);
            let new_seq = read_sequence(new, f, ch);
            if old != new_seq {
                edits.push(Edit {
                    flat: (f * channels + ch) as u32,
                    new_seq,
                });
            }
        }
    }
    edits
}

/// Serialize one edit: Hamming-1 changes compress to a single bit index.
fn write_edit(buf: &mut BytesMut, old_seq: u16, edit: Edit) {
    buf.put_u32_le(edit.flat);
    let diff = old_seq ^ edit.new_seq;
    if diff.count_ones() == 1 {
        buf.put_u8(EDIT_BITFLIP);
        buf.put_u8(diff.trailing_zeros() as u8);
    } else {
        buf.put_u8(EDIT_REPLACE);
        buf.put_u16_le(edit.new_seq);
    }
}

/// Diff two model containers into a `.bkcp` patch.
///
/// `base` may be any readable container version; `new` must carry a
/// graph section (v2/v3) because the patch target is always written as
/// v3 and v3 embeds the topology.
///
/// The returned patch, applied to `base` via [`apply_patch`], reproduces
/// the v3 serialization of `new` byte-exactly (verified digest by digest
/// at apply time).
///
/// # Errors
///
/// Returns [`KcError::IncompatibleModel`] if `new` has no graph section,
/// and propagates parse errors from either container.
pub fn diff_containers(base_bytes: &[u8], new_bytes: &[u8]) -> Result<(Bytes, PatchStats)> {
    let base = read_model_container(base_bytes)?;
    let new = read_model_container(new_bytes)?;
    let spec = new.spec.clone().ok_or_else(|| {
        KcError::IncompatibleModel(
            "diff target has no graph section (v1); patches always target v3, \
             so re-compress the new model as v2/v3 first"
                .into(),
        )
    })?;
    let geoms = spec.conv3_geometries();

    // Base records by digest, for SAME detection (first index wins).
    let mut by_digest = std::collections::HashMap::new();
    for (i, rec) in base.kernels.iter().enumerate() {
        by_digest.entry(rec.digest()).or_insert(i);
    }

    let mut buf = BytesMut::new();
    buf.put_slice(PATCH_MAGIC);
    buf.put_u16_le(PATCH_VERSION);
    buf.put_slice(Digest::of(base_bytes).as_bytes());
    write_graph_spec(&mut buf, &spec)?;
    buf.put_u32_le(new.kernels.len() as u32);

    let mut stats = PatchStats::default();
    for (i, rec) in new.kernels.iter().enumerate() {
        let record_bytes = rec.to_bytes();
        let digest = Digest::of(&record_bytes);
        buf.put_u32_le(geoms[i].node as u32);
        if let Some(&base_idx) = by_digest.get(&digest) {
            buf.put_u8(TAG_SAME);
            buf.put_slice(digest.as_bytes());
            buf.put_u32_le(base_idx as u32);
            stats.same += 1;
            continue;
        }
        if let Some(entry) = try_edits_entry(&base, i, rec, &record_bytes)? {
            buf.put_u8(TAG_EDITS);
            buf.put_slice(digest.as_bytes());
            buf.put_slice(&entry);
            stats.edits += 1;
            continue;
        }
        buf.put_u8(TAG_FULL);
        buf.put_slice(digest.as_bytes());
        buf.put_u32_le(record_bytes.len() as u32);
        buf.put_slice(&record_bytes);
        stats.full += 1;
    }

    // Target digest: the exact v3 bytes apply_patch must produce.
    let records: Vec<Bytes> = new.kernels.iter().map(Container::to_bytes).collect();
    let target = assemble_v3(&spec, &records)?;
    buf.put_slice(Digest::of(&target).as_bytes());
    buf.put_slice(Digest::of(&buf).as_bytes());
    Ok((buf.freeze(), stats))
}

/// Try to encode target record `i` as an EDITS entry against the base
/// record at the same index. Returns the serialized entry body (after
/// the tag + digest) only when reconstruction provably reproduces the
/// record bytes — otherwise `None` and the caller ships FULL.
fn try_edits_entry(
    base: &crate::container::ModelContainer,
    i: usize,
    rec: &Container,
    record_bytes: &[u8],
) -> Result<Option<Bytes>> {
    let Some(base_rec) = base.kernels.get(i) else {
        return Ok(None);
    };
    if (base_rec.filters, base_rec.channels) != (rec.filters, rec.channels) {
        return Ok(None);
    }
    let base_kernel = base_rec.decode_kernel()?;
    let new_kernel = rec.decode_kernel()?;
    let edits = channel_edits(&base_kernel, &new_kernel, rec.filters, rec.channels);
    // A sparse entry only pays off while the edit list is small; past
    // that the full record is both smaller and cheaper to apply.
    if edits.len() * 7 + 32 >= record_bytes.len() {
        return Ok(None);
    }
    // Self-verify: rebuild exactly the way apply_patch will and require
    // byte equality, so an EDITS entry can never reconstruct wrong.
    let caps = rec.tree.config().capacities().to_vec();
    let rebuilt = rebuild_from_edits(base_rec, &caps, &edits)?;
    if rebuilt.as_ref() != record_bytes {
        return Ok(None);
    }
    let mut entry = BytesMut::new();
    entry.put_u32_le(i as u32);
    entry.put_u8(caps.len() as u8);
    for &c in &caps {
        entry.put_u16_le(c as u16);
    }
    entry.put_u32_le(edits.len() as u32);
    for e in &edits {
        let f = e.flat as usize / rec.channels;
        let ch = e.flat as usize % rec.channels;
        write_edit(&mut entry, read_sequence(&base_kernel, f, ch), *e);
    }
    Ok(Some(entry.freeze()))
}

/// Decode a base record, apply a sparse edit list, and recompress with
/// the given tree capacities — the shared reconstruction path of the
/// diff-side self-check and the patch applier.
fn rebuild_from_edits(base_rec: &Container, caps: &[usize], edits: &[Edit]) -> Result<Bytes> {
    let mut kernel = base_rec.decode_kernel()?;
    let channels = base_rec.channels;
    for e in edits {
        let flat = e.flat as usize;
        if flat >= base_rec.filters * channels {
            return Err(KcError::CorruptStream(format!(
                "edit position {flat} outside a {}x{} kernel",
                base_rec.filters, channels
            )));
        }
        BitSeq::new(e.new_seq)
            .map_err(|_| KcError::CorruptStream(format!("invalid edit sequence {}", e.new_seq)))?;
        write_sequence(&mut kernel, flat / channels, flat % channels, e.new_seq);
    }
    let config = TreeConfig::with_capacities(caps.to_vec())
        .map_err(|e| KcError::CorruptStream(format!("bad patch tree config: {e}")))?;
    let compressed = KernelCodec::new(config).compress(&kernel)?;
    Ok(write_container(&compressed))
}

/// Apply a `.bkcp` patch to the base container it was diffed from,
/// returning the complete target **v3** container bytes.
///
/// Verification order: the patch's whole-file checksum first (a
/// corrupted patch is rejected before any field is trusted), then the
/// base digest (wrong or corrupted base), then every rebuilt record
/// against its entry digest, and finally the assembled container against
/// the patch's target digest. The result is byte-identical to
/// serializing the new model as v3 directly.
///
/// # Errors
///
/// [`KcError::IntegrityViolation`] on any digest mismatch (records named
/// `"patch"`, `"base container"`, `"patch entry for node N"`,
/// `"patched container"`), [`KcError::CorruptStream`] on structural
/// damage.
pub fn apply_patch(base_bytes: &[u8], patch_bytes: &[u8]) -> Result<Bytes> {
    let mut buf = verify_patch_envelope(patch_bytes)?;
    buf.advance(4 + 2); // magic + version, validated by the envelope check
    let mut base_digest = [0u8; DIGEST_LEN];
    buf.copy_to_slice(&mut base_digest);
    let found = Digest::of(base_bytes);
    if Digest::from_bytes(base_digest) != found {
        return Err(KcError::IntegrityViolation {
            record: "base container".into(),
            expected: Digest::from_bytes(base_digest).to_hex(),
            found: found.to_hex(),
        });
    }
    let base = read_model_container(base_bytes)?;

    let spec = read_graph_spec(&mut buf)?;
    spec.validate()
        .map_err(|e| KcError::CorruptStream(format!("invalid patch graph section: {e}")))?;
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(KcError::CorruptStream(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 4, "entry count")?;
    let count = buf.get_u32_le() as usize;
    if count > 4096 {
        return Err(KcError::CorruptStream(format!(
            "implausible entry count {count}"
        )));
    }

    let mut records = Vec::with_capacity(count);
    let mut parsed = Vec::with_capacity(count);
    for _ in 0..count {
        need(&buf, 4 + 1 + DIGEST_LEN, "entry header")?;
        let node = buf.get_u32_le();
        let tag = buf.get_u8();
        let mut expected = [0u8; DIGEST_LEN];
        buf.copy_to_slice(&mut expected);
        let expected = Digest::from_bytes(expected);
        let record_bytes = match tag {
            TAG_SAME => {
                need(&buf, 4, "SAME entry")?;
                let idx = buf.get_u32_le() as usize;
                let rec = base.kernels.get(idx).ok_or_else(|| {
                    KcError::CorruptStream(format!(
                        "SAME entry references base record {idx} of {}",
                        base.kernels.len()
                    ))
                })?;
                rec.to_bytes()
            }
            TAG_EDITS => {
                need(&buf, 4 + 1, "EDITS entry header")?;
                let idx = buf.get_u32_le() as usize;
                let base_rec = base.kernels.get(idx).ok_or_else(|| {
                    KcError::CorruptStream(format!(
                        "EDITS entry references base record {idx} of {}",
                        base.kernels.len()
                    ))
                })?;
                let nodes = buf.get_u8() as usize;
                if !(2..=8).contains(&nodes) {
                    return Err(KcError::CorruptStream(format!(
                        "bad patch tree node count {nodes}"
                    )));
                }
                need(&buf, 2 * nodes, "patch tree capacities")?;
                let caps: Vec<usize> = (0..nodes).map(|_| buf.get_u16_le() as usize).collect();
                need(&buf, 4, "edit count")?;
                let n_edits = buf.get_u32_le() as usize;
                if n_edits > base_rec.filters * base_rec.channels {
                    return Err(KcError::CorruptStream(format!(
                        "implausible edit count {n_edits}"
                    )));
                }
                let mut edits = Vec::with_capacity(n_edits);
                for _ in 0..n_edits {
                    need(&buf, 5, "edit")?;
                    let flat = buf.get_u32_le();
                    let kind = buf.get_u8();
                    let new_seq = match kind {
                        EDIT_BITFLIP => {
                            need(&buf, 1, "edit bit index")?;
                            let bit = buf.get_u8();
                            if bit >= 9 {
                                return Err(KcError::CorruptStream(format!(
                                    "edit bit index {bit} out of range"
                                )));
                            }
                            let f = flat as usize / base_rec.channels.max(1);
                            let ch = flat as usize % base_rec.channels.max(1);
                            if flat as usize >= base_rec.filters * base_rec.channels {
                                return Err(KcError::CorruptStream(format!(
                                    "edit position {flat} outside the base kernel"
                                )));
                            }
                            let old = read_sequence(&base_rec.decode_kernel()?, f, ch);
                            old ^ (1u16 << bit)
                        }
                        EDIT_REPLACE => {
                            need(&buf, 2, "edit sequence")?;
                            buf.get_u16_le()
                        }
                        other => {
                            return Err(KcError::CorruptStream(format!(
                                "unknown edit kind {other}"
                            )))
                        }
                    };
                    edits.push(Edit { flat, new_seq });
                }
                rebuild_from_edits(base_rec, &caps, &edits)?
            }
            TAG_FULL => {
                need(&buf, 4, "FULL entry length")?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len, "FULL entry body")?;
                let bytes = Bytes::copy_from_slice(&buf[..len]);
                buf.advance(len);
                bytes
            }
            other => {
                return Err(KcError::CorruptStream(format!(
                    "unknown patch entry tag {other}"
                )))
            }
        };
        let found = Digest::of(&record_bytes);
        if found != expected {
            return Err(KcError::IntegrityViolation {
                record: format!("patch entry for node {node}"),
                expected: expected.to_hex(),
                found: found.to_hex(),
            });
        }
        parsed.push(read_container(&record_bytes)?);
        records.push(record_bytes);
    }

    need(&buf, DIGEST_LEN, "target digest")?;
    let mut target_digest = [0u8; DIGEST_LEN];
    buf.copy_to_slice(&mut target_digest);
    let target_digest = Digest::from_bytes(target_digest);
    if buf.remaining() != DIGEST_LEN {
        return Err(KcError::CorruptStream(format!(
            "{} bytes left after the patch trailer",
            buf.remaining()
        )));
    }

    check_spec_kernels(
        &spec,
        parsed.iter().map(|c| (c.filters, c.channels)),
        parsed.len(),
    )?;
    let out = assemble_v3(&spec, &records)?;
    let found = Digest::of(&out);
    if found != target_digest {
        return Err(KcError::IntegrityViolation {
            record: "patched container".into(),
            expected: target_digest.to_hex(),
            found: found.to_hex(),
        });
    }
    Ok(out)
}

/// Summary of a parsed patch header, for `bnnkc inspect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchInfo {
    /// Digest of the base container the patch applies to.
    pub base_digest: Digest,
    /// Digest of the v3 container the patch produces.
    pub target_digest: Digest,
    /// Entry counts by kind.
    pub stats: PatchStats,
    /// `(node id, tag name, payload bytes)` per entry.
    pub entries: Vec<(u32, &'static str, usize)>,
}

/// Parse a patch's structure without a base container: verifies the
/// whole-file checksum and walks the entries. Used by `bnnkc inspect`.
///
/// # Errors
///
/// Same integrity/structure errors as [`apply_patch`], minus everything
/// that needs the base.
pub fn inspect_patch(patch_bytes: &[u8]) -> Result<PatchInfo> {
    let mut buf = verify_patch_envelope(patch_bytes)?;
    buf.advance(4 + 2);
    let mut base_digest = [0u8; DIGEST_LEN];
    buf.copy_to_slice(&mut base_digest);
    let spec = read_graph_spec(&mut buf)?;
    spec.validate()
        .map_err(|e| KcError::CorruptStream(format!("invalid patch graph section: {e}")))?;
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(KcError::CorruptStream(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 4, "entry count")?;
    let count = buf.get_u32_le() as usize;
    if count > 4096 {
        return Err(KcError::CorruptStream(format!(
            "implausible entry count {count}"
        )));
    }
    let mut stats = PatchStats::default();
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        need(&buf, 4 + 1 + DIGEST_LEN, "entry header")?;
        let node = buf.get_u32_le();
        let tag = buf.get_u8();
        buf.advance(DIGEST_LEN);
        let start = buf.remaining();
        let name = match tag {
            TAG_SAME => {
                need(&buf, 4, "SAME entry")?;
                buf.advance(4);
                stats.same += 1;
                "same"
            }
            TAG_EDITS => {
                need(&buf, 5, "EDITS entry header")?;
                buf.advance(4);
                let nodes = buf.get_u8() as usize;
                need(&buf, 2 * nodes + 4, "EDITS entry tables")?;
                buf.advance(2 * nodes);
                let n_edits = buf.get_u32_le() as usize;
                for _ in 0..n_edits {
                    need(&buf, 5, "edit")?;
                    buf.advance(4);
                    let kind = buf.get_u8();
                    match kind {
                        EDIT_BITFLIP => {
                            need(&buf, 1, "edit bit index")?;
                            buf.advance(1);
                        }
                        EDIT_REPLACE => {
                            need(&buf, 2, "edit sequence")?;
                            buf.advance(2);
                        }
                        other => {
                            return Err(KcError::CorruptStream(format!(
                                "unknown edit kind {other}"
                            )))
                        }
                    }
                }
                stats.edits += 1;
                "edits"
            }
            TAG_FULL => {
                need(&buf, 4, "FULL entry length")?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len, "FULL entry body")?;
                buf.advance(len);
                stats.full += 1;
                "full"
            }
            other => {
                return Err(KcError::CorruptStream(format!(
                    "unknown patch entry tag {other}"
                )))
            }
        };
        entries.push((node, name, start - buf.remaining()));
    }
    need(&buf, DIGEST_LEN, "target digest")?;
    let mut target_digest = [0u8; DIGEST_LEN];
    buf.copy_to_slice(&mut target_digest);
    if buf.remaining() != DIGEST_LEN {
        return Err(KcError::CorruptStream(format!(
            "{} bytes left after the patch trailer",
            buf.remaining()
        )));
    }
    Ok(PatchInfo {
        base_digest: Digest::from_bytes(base_digest),
        target_digest: Digest::from_bytes(target_digest),
        stats,
        entries,
    })
}

/// Check the patch magic, version, and whole-file checksum (the last 16
/// bytes cover everything before them). Returns the full byte slice for
/// field-level parsing — the checksum runs *first* so no other field is
/// ever trusted from a corrupted patch.
fn verify_patch_envelope(patch_bytes: &[u8]) -> Result<&[u8]> {
    // Minimum: magic + version + base digest + (empty graph impossible,
    // but structure errors surface later) + target digest + checksum.
    if patch_bytes.len() < 4 + 2 + DIGEST_LEN + DIGEST_LEN + DIGEST_LEN {
        return Err(KcError::CorruptStream("truncated patch".into()));
    }
    if &patch_bytes[..4] != PATCH_MAGIC {
        return Err(KcError::CorruptStream("bad patch magic".into()));
    }
    let version = u16::from_le_bytes([patch_bytes[4], patch_bytes[5]]);
    if version != PATCH_VERSION {
        return Err(KcError::CorruptStream(format!(
            "unsupported patch version {version:#06x}"
        )));
    }
    let body_len = patch_bytes.len() - DIGEST_LEN;
    let mut stored = [0u8; DIGEST_LEN];
    stored.copy_from_slice(&patch_bytes[body_len..]);
    let stored = Digest::from_bytes(stored);
    let found = Digest::of(&patch_bytes[..body_len]);
    if stored != found {
        return Err(KcError::IntegrityViolation {
            record: "patch".into(),
            expected: stored.to_hex(),
            found: found.to_hex(),
        });
    }
    Ok(patch_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CompressedKernel;
    use crate::container::{write_model_container_v2, write_model_container_v3};
    use bitnn::graph::arch::{build_spec, sample_conv3_kernels, Arch};
    use bitnn::tensor::BitTensor;

    fn model(arch: Arch, seed: u64) -> (bitnn::graph::GraphSpec, Vec<BitTensor>) {
        let spec = build_spec(arch, 0.0625, 32).unwrap();
        let kernels = sample_conv3_kernels(&spec, seed).unwrap();
        (spec, kernels)
    }

    fn compress_all(kernels: &[BitTensor]) -> Vec<CompressedKernel> {
        let codec = KernelCodec::paper();
        kernels.iter().map(|k| codec.compress(k).unwrap()).collect()
    }

    #[test]
    fn identical_models_diff_to_all_same() {
        let (spec, kernels) = model(Arch::VggSmall, 7);
        let cks = compress_all(&kernels);
        let base = write_model_container_v2(&spec, &cks).unwrap();
        let new = write_model_container_v3(&spec, &cks).unwrap();
        let (patch, stats) = diff_containers(&base, &new).unwrap();
        assert_eq!(stats.same, cks.len());
        assert_eq!((stats.edits, stats.full), (0, 0));
        assert!(patch.len() < new.len() / 2, "all-SAME patch must be small");
        let out = apply_patch(&base, &patch).unwrap();
        assert_eq!(out, new, "patched bytes must equal the v3 target exactly");
    }

    #[test]
    fn sparse_changes_become_edits_entries() {
        let (spec, mut kernels) = model(Arch::VggSmall, 7);
        let base = write_model_container_v2(&spec, &compress_all(&kernels)).unwrap();
        // Flip one bit in one channel of kernel 1 (Hamming-1) and fully
        // replace a sequence in kernel 2.
        let seq = read_sequence(&kernels[1], 0, 0);
        write_sequence(&mut kernels[1], 0, 0, seq ^ 1);
        let seq = read_sequence(&kernels[2], 1, 1);
        write_sequence(&mut kernels[2], 1, 1, (seq ^ 0b101) & 0x1FF);
        let cks = compress_all(&kernels);
        let new = write_model_container_v3(&spec, &cks).unwrap();
        let (patch, stats) = diff_containers(&base, &new).unwrap();
        assert!(stats.same >= 1, "untouched kernels must dedupe: {stats:?}");
        assert!(stats.edits >= 1, "sparse changes must delta: {stats:?}");
        let out = apply_patch(&base, &patch).unwrap();
        assert_eq!(out, new);
    }

    #[test]
    fn wrong_base_is_rejected() {
        let (spec, kernels) = model(Arch::VggSmall, 7);
        let (_, other_kernels) = model(Arch::VggSmall, 8);
        let cks = compress_all(&kernels);
        let base = write_model_container_v2(&spec, &cks).unwrap();
        let wrong = write_model_container_v2(&spec, &compress_all(&other_kernels)).unwrap();
        let new = write_model_container_v3(&spec, &cks).unwrap();
        let (patch, _) = diff_containers(&base, &new).unwrap();
        let err = apply_patch(&wrong, &patch).unwrap_err();
        assert!(
            matches!(&err, KcError::IntegrityViolation { record, .. } if record == "base container"),
            "{err}"
        );
    }

    #[test]
    fn v1_base_patches_forward_to_v3() {
        use crate::container::write_model_container;
        let (spec, mut kernels) = model(Arch::ReActNet, 3);
        let base = write_model_container(&compress_all(&kernels));
        let seq = read_sequence(&kernels[0], 0, 0);
        write_sequence(&mut kernels[0], 0, 0, seq ^ 2);
        let new = write_model_container_v3(&spec, &compress_all(&kernels)).unwrap();
        let (patch, _) = diff_containers(&base, &new).unwrap();
        assert_eq!(apply_patch(&base, &patch).unwrap(), new);
    }

    #[test]
    fn v1_diff_target_is_rejected() {
        let (_, kernels) = model(Arch::ReActNet, 3);
        use crate::container::write_model_container;
        let v1 = write_model_container(&compress_all(&kernels));
        let err = diff_containers(&v1, &v1).unwrap_err();
        assert!(matches!(err, KcError::IncompatibleModel(_)), "{err}");
    }

    #[test]
    fn patch_checksum_guards_every_byte() {
        let (spec, kernels) = model(Arch::VggSmall, 11);
        let cks = compress_all(&kernels);
        let base = write_model_container_v2(&spec, &cks).unwrap();
        let new = write_model_container_v3(&spec, &cks).unwrap();
        let (patch, _) = diff_containers(&base, &new).unwrap();
        // Every single-byte corruption must be rejected — the whole-file
        // checksum catches body bytes, the magic/version checks catch the
        // header, and a corrupted checksum no longer matches the body.
        let step = (patch.len() / 97).max(1);
        for pos in (0..patch.len()).step_by(step) {
            let mut bad = patch.to_vec();
            bad[pos] ^= 0x20;
            assert!(
                apply_patch(&base, &bad).is_err(),
                "byte {pos} corrupt patch applied"
            );
        }
    }

    #[test]
    fn inspect_reports_entry_kinds() {
        let (spec, mut kernels) = model(Arch::VggSmall, 5);
        let base = write_model_container_v2(&spec, &compress_all(&kernels)).unwrap();
        let seq = read_sequence(&kernels[0], 0, 0);
        write_sequence(&mut kernels[0], 0, 0, seq ^ 4);
        let new = write_model_container_v3(&spec, &compress_all(&kernels)).unwrap();
        let (patch, stats) = diff_containers(&base, &new).unwrap();
        let info = inspect_patch(&patch).unwrap();
        assert_eq!(info.stats, stats);
        assert_eq!(info.entries.len(), stats.same + stats.edits + stats.full);
        assert_eq!(info.base_digest, Digest::of(&base));
        assert_eq!(info.target_digest, Digest::of(&new));
    }
}
