//! Frequency analysis of bit sequences (paper Sec. III-A).
//!
//! A [`FreqTable`] counts how often each of the 512 sequences occurs in a
//! kernel (or a whole block's kernels) and answers the questions behind
//! Fig. 3 ("what are the top-16 sequences and their shares?") and Table II
//! ("what fraction do the top-64 / top-256 cover?").

use crate::bitseq::{BitSeq, NUM_SEQUENCES};
use crate::error::{KcError, Result};
use bitnn::tensor::BitTensor;
use bitnn::weightgen::count_sequences;

/// Occurrence counts over the 512 bit sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqTable {
    counts: Vec<u64>,
    total: u64,
}

impl Default for FreqTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FreqTable {
    /// Empty table.
    pub fn new() -> Self {
        FreqTable {
            counts: vec![0; NUM_SEQUENCES],
            total: 0,
        }
    }

    /// Count the sequences of a `[K, C, 3, 3]` binary kernel.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::BadKernelShape`] for other shapes.
    pub fn from_kernel(kernel: &BitTensor) -> Result<Self> {
        let shape = kernel.shape();
        if shape.len() != 4 || shape[2] != 3 || shape[3] != 3 {
            return Err(KcError::BadKernelShape(shape.to_vec()));
        }
        let counts = count_sequences(kernel);
        let total = counts.iter().sum();
        Ok(FreqTable { counts, total })
    }

    /// Build from raw counts (index = sequence value).
    ///
    /// # Errors
    ///
    /// Returns [`KcError::InvalidSequence`] if `counts.len() != 512`.
    pub fn from_counts(counts: Vec<u64>) -> Result<Self> {
        if counts.len() != NUM_SEQUENCES {
            return Err(KcError::InvalidSequence(counts.len() as u16));
        }
        let total = counts.iter().sum();
        Ok(FreqTable { counts, total })
    }

    /// Record one occurrence.
    pub fn record(&mut self, seq: BitSeq) {
        self.counts[seq.value() as usize] += 1;
        self.total += 1;
    }

    /// Merge another table into this one (e.g. all kernels of a block).
    pub fn merge(&mut self, other: &FreqTable) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Occurrences of `seq`.
    pub fn count(&self, seq: BitSeq) -> u64 {
        self.counts[seq.value() as usize]
    }

    /// Total occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Relative frequency of `seq` in percent.
    pub fn percent(&self, seq: BitSeq) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(seq) as f64 / self.total as f64 * 100.0
        }
    }

    /// Number of sequences with a nonzero count.
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Sequences sorted by descending count (ties by ascending value, so
    /// the order is deterministic).
    pub fn sorted_desc(&self) -> Vec<(BitSeq, u64)> {
        let mut v: Vec<(BitSeq, u64)> = (0..NUM_SEQUENCES as u16)
            .map(|s| (BitSeq::new_unchecked(s), self.counts[s as usize]))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The `k` most frequent sequences (Fig. 3 uses `k = 16`).
    pub fn top_k(&self, k: usize) -> Vec<(BitSeq, u64)> {
        self.sorted_desc().into_iter().take(k).collect()
    }

    /// The `k` least frequent sequences **among those that occur**,
    /// rarest first (the clustering algorithm's `su` set).
    pub fn bottom_k_present(&self, k: usize) -> Vec<(BitSeq, u64)> {
        let mut v: Vec<(BitSeq, u64)> = self
            .sorted_desc()
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .collect();
        v.reverse();
        v.truncate(k);
        v
    }

    /// Fraction (in percent) of occurrences covered by the `k` most
    /// frequent sequences — the Table II statistic.
    pub fn top_k_coverage_pct(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.sorted_desc().iter().take(k).map(|&(_, c)| c).sum();
        covered as f64 / self.total as f64 * 100.0
    }

    /// Shannon entropy of the empirical distribution in bits per sequence —
    /// the information-theoretic lower bound any code is judged against.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        -self
            .counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Raw counts, indexed by sequence value.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnn::weightgen::SeqDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_table() -> FreqTable {
        let mut rng = StdRng::seed_from_u64(3);
        let kernel = SeqDistribution::for_block(1, 0).sample_kernel(64, 64, &mut rng);
        FreqTable::from_kernel(&kernel).unwrap()
    }

    #[test]
    fn from_kernel_counts_all_channels() {
        let t = skewed_table();
        assert_eq!(t.total(), 64 * 64);
        assert!(t.distinct() > 100);
    }

    #[test]
    fn rejects_non_3x3() {
        let k = BitTensor::zeros(&[2, 2, 1, 1]);
        assert!(matches!(
            FreqTable::from_kernel(&k),
            Err(KcError::BadKernelShape(_))
        ));
    }

    #[test]
    fn record_and_percent() {
        let mut t = FreqTable::new();
        for _ in 0..3 {
            t.record(BitSeq::ZEROS);
        }
        t.record(BitSeq::ONES);
        assert_eq!(t.count(BitSeq::ZEROS), 3);
        assert_eq!(t.total(), 4);
        assert_eq!(t.percent(BitSeq::ZEROS), 75.0);
        assert_eq!(t.percent(BitSeq::new(5).unwrap()), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FreqTable::new();
        a.record(BitSeq::ZEROS);
        let mut b = FreqTable::new();
        b.record(BitSeq::ZEROS);
        b.record(BitSeq::ONES);
        a.merge(&b);
        assert_eq!(a.count(BitSeq::ZEROS), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn sorted_desc_is_deterministic_and_sorted() {
        let t = skewed_table();
        let s = t.sorted_desc();
        assert_eq!(s.len(), 512);
        for w in s.windows(2) {
            assert!(w[0].1 >= w[1].1);
            if w[0].1 == w[1].1 {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn skewed_kernel_tops_are_extremes() {
        // The calibrated distribution puts sequences 0 and 511 on top.
        let t = skewed_table();
        let top2: Vec<u16> = t.top_k(2).iter().map(|&(s, _)| s.value()).collect();
        assert!(top2.contains(&0) && top2.contains(&511), "{top2:?}");
    }

    #[test]
    fn coverage_is_monotone_in_k() {
        let t = skewed_table();
        let c64 = t.top_k_coverage_pct(64);
        let c256 = t.top_k_coverage_pct(256);
        assert!(c64 > 40.0, "top64 = {c64}");
        assert!(c256 > c64);
        assert!((t.top_k_coverage_pct(512) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bottom_k_present_excludes_zeros() {
        let mut t = FreqTable::new();
        t.record(BitSeq::ZEROS);
        t.record(BitSeq::ZEROS);
        t.record(BitSeq::ONES);
        let b = t.bottom_k_present(5);
        assert_eq!(b.len(), 2); // only two sequences occur
        assert_eq!(b[0].0, BitSeq::ONES); // rarest first
    }

    #[test]
    fn entropy_bounds() {
        // Uniform over 512 -> 9 bits; single symbol -> 0 bits.
        let t = FreqTable::from_counts(vec![1; 512]).unwrap();
        assert!((t.entropy_bits() - 9.0).abs() < 1e-9);
        let mut single = vec![0u64; 512];
        single[7] = 100;
        let t = FreqTable::from_counts(single).unwrap();
        assert_eq!(t.entropy_bits(), 0.0);
        // Skewed tables sit strictly between.
        let t = skewed_table();
        let h = t.entropy_bits();
        assert!(h > 0.0 && h < 9.0, "entropy = {h}");
    }

    #[test]
    fn empty_table_is_safe() {
        let t = FreqTable::new();
        assert_eq!(t.top_k_coverage_pct(64), 0.0);
        assert_eq!(t.entropy_bits(), 0.0);
        assert_eq!(t.percent(BitSeq::ZEROS), 0.0);
    }
}
