//! Length-prefixed request/response codec for the serving daemon.
//!
//! `bnnkc serve` speaks a deliberately tiny binary protocol instead of
//! HTTP: every message is one **frame** —
//!
//! ```text
//! +-------+---------+------+-------------+----------+-------------+
//! | magic | version | kind | payload len | payload  | checksum    |
//! | BKWF  | u8 (=1) | u8   | u32 LE      | len bytes| u64 LE      |
//! +-------+---------+------+-------------+----------+-------------+
//! ```
//!
//! The checksum is the folded [`bkh128`](crate::digest) digest of every
//! byte before it (magic, version, kind, length, payload), so any
//! single-byte corruption anywhere in a frame is *detected*, never
//! silently misparsed — the same guarantee the v3 container format gives
//! shipped model files, extended to the serving socket. The payload
//! length is validated against [`MAX_PAYLOAD`] **before** any buffer is
//! sized from it, so a corrupted length field cannot trigger a huge
//! allocation.
//!
//! Decoding is strict: unknown kinds, non-UTF-8 strings, shape/count
//! mismatches, and trailing bytes are all typed [`WireError`]s. The
//! decoder never panics on attacker-controlled bytes (the wire fuzz
//! suite sweeps every single-byte mutation and every truncation).
//!
//! The protocol is versioned by the header byte: a frame from a future
//! incompatible protocol fails with [`WireError::UnsupportedVersion`]
//! instead of misparsing.

use crate::digest::Digest;
use std::fmt;
use std::io::{Read, Write};

/// Frame magic: the first four bytes of every wire frame.
pub const MAGIC: [u8; 4] = *b"BKWF";
/// Current protocol version carried in the frame header.
pub const VERSION: u8 = 1;
/// Hard cap on a frame's payload length (16 MiB). Enforced before any
/// allocation is sized from the length field.
pub const MAX_PAYLOAD: usize = 1 << 24;
/// Fixed frame header size: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 10;
/// Fixed frame trailer size: the u64 checksum.
pub const TRAILER_LEN: usize = 8;

/// Typed decode/validation errors. Every malformed frame maps to one of
/// these — the decoder has no panicking paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header's version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known message (or a response kind arrived
    /// where a request was expected, and vice versa).
    UnknownKind(u8),
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the frame needs to be complete.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The stored checksum does not match the frame bytes.
    ChecksumMismatch {
        /// Checksum the frame carries.
        stored: u64,
        /// Checksum the bytes actually have.
        computed: u64,
    },
    /// The payload is structurally invalid for its kind.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: payload claims {len} bytes, max {max}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Reading a frame from a byte stream: transport failure or a malformed
/// frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The bytes read do not form a valid frame.
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "wire transport error: {e}"),
            FrameError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Typed rejection codes an [`Response::Err`] frame carries. The hot
/// ones ([`ErrorCode::QueueFull`], [`ErrorCode::ShuttingDown`]) are what
/// the daemon's backpressure and drain paths answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The model's request queue is at its configured depth; retry later.
    QueueFull = 1,
    /// No registry entry has the requested name.
    UnknownModel = 2,
    /// The request's input shape does not match the model.
    BadInput = 3,
    /// The daemon is draining; no new requests are accepted.
    ShuttingDown = 4,
    /// A hot-swap container is arch/scale-incompatible with the entry.
    Incompatible = 5,
    /// Any other server-side failure.
    Internal = 6,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::UnknownModel,
            3 => ErrorCode::BadInput,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::Incompatible,
            6 => ErrorCode::Internal,
            _ => return Err(WireError::Malformed("unknown error code")),
        })
    }

    /// Stable lowercase name (what `loadgen` prints in rejection counts).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::BadInput => "bad-input",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Incompatible => "incompatible",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One inference request: a single `[1, c, h, w]` input for a named
/// registry entry. `seq` is an opaque client token echoed back in the
/// matching [`Response::Logits`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Registry entry name.
    pub model: String,
    /// Client-chosen sequence token, echoed in the response.
    pub seq: u64,
    /// Input shape as `[channels, height, width]`.
    pub shape: [u32; 3],
    /// Row-major input data, exactly `c*h*w` values.
    pub data: Vec<f32>,
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Run one input through a registered model.
    Infer(InferRequest),
    /// Fetch daemon counters and the model list.
    Stats,
    /// Hot-swap a registry entry with the container at `path` (a path
    /// visible to the daemon).
    Swap {
        /// Registry entry to replace.
        model: String,
        /// Daemon-side path of the replacement `.bkcm` container.
        path: String,
    },
    /// Drain and stop the daemon.
    Shutdown,
}

/// Per-model registry facts reported by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry entry name.
    pub name: String,
    /// Monotonic version, bumped by every hot-swap.
    pub version: u32,
    /// Input channels.
    pub channels: u32,
    /// Input image side.
    pub image: u32,
    /// Logit count.
    pub classes: u32,
    /// Requests queued right now.
    pub queued: u32,
    /// Backpressure threshold.
    pub queue_depth: u32,
    /// Coalescing cap the batch worker flushes at.
    pub max_batch: u32,
}

/// Daemon counters and registry contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    /// Requests answered with logits.
    pub served: u64,
    /// `forward_batch_into` calls issued.
    pub batches: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Hot-swaps applied.
    pub swaps: u64,
    /// Registered models.
    pub models: Vec<ModelInfo>,
    /// Batch-size histogram as `(size, count)` pairs, ascending by size,
    /// zero counts omitted.
    pub batch_hist: Vec<(u32, u64)>,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Successful inference.
    Logits {
        /// The request's sequence token.
        seq: u64,
        /// Model version that served this request (hot-swap provenance).
        version: u32,
        /// The logits.
        data: Vec<f32>,
    },
    /// Typed rejection.
    Err {
        /// Machine-readable rejection class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// A hot-swap succeeded; the entry now serves `version`.
    Swapped {
        /// The new monotonic version.
        version: u32,
    },
    /// Shutdown acknowledged; the daemon is draining.
    Closing,
}

// Frame kinds. Requests have the high bit clear, responses set, so a
// transplanted response frame can never decode as a request.
const K_PING: u8 = 0x01;
const K_INFER: u8 = 0x02;
const K_STATS: u8 = 0x03;
const K_SWAP: u8 = 0x04;
const K_SHUTDOWN: u8 = 0x05;
const K_PONG: u8 = 0x81;
const K_LOGITS: u8 = 0x82;
const K_ERR: u8 = 0x83;
const K_STATS_REPORT: u8 = 0x84;
const K_SWAPPED: u8 = 0x85;
const K_CLOSING: u8 = 0x86;

/// The frame checksum: the leading 64 bits of the `bkh128` digest of
/// everything before the trailer.
pub fn checksum(frame_body: &[u8]) -> u64 {
    let d = Digest::of(frame_body);
    u64::from_le_bytes(d.as_bytes()[..8].try_into().expect("8 bytes"))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// Write one frame: header, payload from `write_payload`, checksum.
/// `out` is cleared first and holds exactly the frame afterwards.
fn encode_frame(kind: u8, out: &mut Vec<u8>, write_payload: impl FnOnce(&mut Vec<u8>)) {
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&[0u8; 4]);
    let start = out.len();
    write_payload(out);
    let len = (out.len() - start) as u32;
    out[6..10].copy_from_slice(&len.to_le_bytes());
    let sum = checksum(out);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Encode a request into `out` (cleared first).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Ping => encode_frame(K_PING, out, |_| {}),
        Request::Infer(r) => encode_frame(K_INFER, out, |p| {
            put_str(p, &r.model);
            p.extend_from_slice(&r.seq.to_le_bytes());
            for d in r.shape {
                p.extend_from_slice(&d.to_le_bytes());
            }
            p.extend_from_slice(&(r.data.len() as u32).to_le_bytes());
            for v in &r.data {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }),
        Request::Stats => encode_frame(K_STATS, out, |_| {}),
        Request::Swap { model, path } => encode_frame(K_SWAP, out, |p| {
            put_str(p, model);
            put_str(p, path);
        }),
        Request::Shutdown => encode_frame(K_SHUTDOWN, out, |_| {}),
    }
}

/// Encode a response into `out` (cleared first).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Pong => encode_frame(K_PONG, out, |_| {}),
        Response::Logits { seq, version, data } => encode_frame(K_LOGITS, out, |p| {
            p.extend_from_slice(&seq.to_le_bytes());
            p.extend_from_slice(&version.to_le_bytes());
            p.extend_from_slice(&(data.len() as u32).to_le_bytes());
            for v in data {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }),
        Response::Err { code, message } => encode_frame(K_ERR, out, |p| {
            p.push(*code as u8);
            put_str(p, message);
        }),
        Response::Stats(s) => encode_frame(K_STATS_REPORT, out, |p| {
            p.extend_from_slice(&s.served.to_le_bytes());
            p.extend_from_slice(&s.batches.to_le_bytes());
            p.extend_from_slice(&s.rejected.to_le_bytes());
            p.extend_from_slice(&s.swaps.to_le_bytes());
            p.extend_from_slice(&(s.models.len() as u16).to_le_bytes());
            for m in &s.models {
                put_str(p, &m.name);
                for v in [
                    m.version,
                    m.channels,
                    m.image,
                    m.classes,
                    m.queued,
                    m.queue_depth,
                    m.max_batch,
                ] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
            }
            p.extend_from_slice(&(s.batch_hist.len() as u16).to_le_bytes());
            for &(size, count) in &s.batch_hist {
                p.extend_from_slice(&size.to_le_bytes());
                p.extend_from_slice(&count.to_le_bytes());
            }
        }),
        Response::Swapped { version } => encode_frame(K_SWAPPED, out, |p| {
            p.extend_from_slice(&version.to_le_bytes());
        }),
        Response::Closing => encode_frame(K_CLOSING, out, |_| {}),
    }
}

/// Strict little-endian payload reader. Every underrun and every
/// leftover byte is a typed error.
struct Rd<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, off: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .off
            .checked_add(n)
            .ok_or(WireError::Malformed("length overflow"))?;
        if end > self.b.len() {
            return Err(WireError::Malformed("payload underrun"));
        }
        let s = &self.b[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.bytes(len)?).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    /// `count` f32s. The count was validated against the remaining
    /// payload *before* this reserves anything.
    fn f32s(&mut self, count: usize) -> Result<Vec<f32>, WireError> {
        let raw = self.bytes(
            count
                .checked_mul(4)
                .ok_or(WireError::Malformed("f32 count overflow"))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.off != self.b.len() {
            return Err(WireError::Malformed("trailing payload bytes"));
        }
        Ok(())
    }
}

/// Validate one complete frame and return `(kind, payload)`. Rejects
/// short buffers, bad magic/version, oversized lengths, checksum
/// mismatches, and trailing bytes — in that order, so the length field
/// is sanity-checked before anything is sized from it.
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if bytes[4] != VERSION {
        return Err(WireError::UnsupportedVersion(bytes[4]));
    }
    let kind = bytes[5];
    let len = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let total = HEADER_LEN + len + TRAILER_LEN;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(WireError::Malformed("trailing bytes after frame"));
    }
    let stored = u64::from_le_bytes(bytes[HEADER_LEN + len..].try_into().expect("8 bytes"));
    let computed = checksum(&bytes[..HEADER_LEN + len]);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok((kind, &bytes[HEADER_LEN..HEADER_LEN + len]))
}

/// Decode a complete request frame.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let (kind, payload) = decode_frame(bytes)?;
    let mut rd = Rd::new(payload);
    let req = match kind {
        K_PING => Request::Ping,
        K_INFER => {
            let model = rd.str()?.to_string();
            let seq = rd.u64()?;
            let shape = [rd.u32()?, rd.u32()?, rd.u32()?];
            let count = rd.u32()? as usize;
            let elems = (shape[0] as u64) * (shape[1] as u64) * (shape[2] as u64);
            if shape.contains(&0) || elems != count as u64 {
                return Err(WireError::Malformed("shape does not match data count"));
            }
            Request::Infer(InferRequest {
                model,
                seq,
                shape,
                data: rd.f32s(count)?,
            })
        }
        K_STATS => Request::Stats,
        K_SWAP => Request::Swap {
            model: rd.str()?.to_string(),
            path: rd.str()?.to_string(),
        },
        K_SHUTDOWN => Request::Shutdown,
        other => return Err(WireError::UnknownKind(other)),
    };
    rd.finish()?;
    Ok(req)
}

/// Decode a complete response frame.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let (kind, payload) = decode_frame(bytes)?;
    let mut rd = Rd::new(payload);
    let resp = match kind {
        K_PONG => Response::Pong,
        K_LOGITS => {
            let seq = rd.u64()?;
            let version = rd.u32()?;
            let count = rd.u32()? as usize;
            Response::Logits {
                seq,
                version,
                data: rd.f32s(count)?,
            }
        }
        K_ERR => Response::Err {
            code: ErrorCode::from_u8(rd.u8()?)?,
            message: rd.str()?.to_string(),
        },
        K_STATS_REPORT => {
            let mut s = StatsReport {
                served: rd.u64()?,
                batches: rd.u64()?,
                rejected: rd.u64()?,
                swaps: rd.u64()?,
                ..StatsReport::default()
            };
            let models = rd.u16()? as usize;
            for _ in 0..models {
                let name = rd.str()?.to_string();
                let mut v = [0u32; 7];
                for slot in &mut v {
                    *slot = rd.u32()?;
                }
                s.models.push(ModelInfo {
                    name,
                    version: v[0],
                    channels: v[1],
                    image: v[2],
                    classes: v[3],
                    queued: v[4],
                    queue_depth: v[5],
                    max_batch: v[6],
                });
            }
            let hist = rd.u16()? as usize;
            for _ in 0..hist {
                let size = rd.u32()?;
                let count = rd.u64()?;
                s.batch_hist.push((size, count));
            }
            Response::Stats(s)
        }
        K_SWAPPED => Response::Swapped { version: rd.u32()? },
        K_CLOSING => Response::Closing,
        other => return Err(WireError::UnknownKind(other)),
    };
    rd.finish()?;
    Ok(resp)
}

/// Read one complete frame from `r` into `buf` (cleared first).
///
/// Returns `Ok(false)` on a clean EOF at a frame boundary (the peer
/// closed the connection), `Ok(true)` with the raw frame in `buf`
/// otherwise. The header is validated (magic, version, length cap)
/// before the payload buffer is sized, so a corrupt length field cannot
/// force a large allocation.
///
/// # Errors
///
/// [`FrameError::Io`] for transport failures, [`FrameError::Wire`] for
/// malformed headers or mid-frame EOF. The caller still runs
/// [`decode_request`]/[`decode_response`] over `buf`, which re-checks
/// everything including the checksum.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<bool, FrameError> {
    buf.clear();
    buf.resize(HEADER_LEN, 0);
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut buf[filled..HEADER_LEN])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                have: filled,
            }
            .into());
        }
        filled += n;
    }
    let magic: [u8; 4] = buf[..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic).into());
    }
    if buf[4] != VERSION {
        return Err(WireError::UnsupportedVersion(buf[4]).into());
    }
    let len = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        }
        .into());
    }
    let total = HEADER_LEN + len + TRAILER_LEN;
    buf.resize(total, 0);
    let mut at = HEADER_LEN;
    while at < total {
        let n = r.read(&mut buf[at..total])?;
        if n == 0 {
            return Err(WireError::Truncated {
                needed: total,
                have: at,
            }
            .into());
        }
        at += n;
    }
    Ok(true)
}

/// Write one already-encoded frame to `w`.
///
/// # Errors
///
/// Propagates the transport error.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf).expect("decode"), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        assert_eq!(decode_response(&buf).expect("decode"), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Swap {
            model: "default".into(),
            path: "/tmp/new.bkcm".into(),
        });
        roundtrip_request(Request::Infer(InferRequest {
            model: "m".into(),
            seq: 42,
            shape: [2, 3, 3],
            data: (0..18).map(|i| i as f32 * 0.5 - 3.0).collect(),
        }));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Closing);
        roundtrip_response(Response::Swapped { version: 7 });
        roundtrip_response(Response::Logits {
            seq: 9,
            version: 2,
            data: vec![0.25, -1.5, f32::MIN_POSITIVE],
        });
        roundtrip_response(Response::Err {
            code: ErrorCode::QueueFull,
            message: "queue at depth 256".into(),
        });
        roundtrip_response(Response::Stats(StatsReport {
            served: 100,
            batches: 10,
            rejected: 3,
            swaps: 1,
            models: vec![ModelInfo {
                name: "default".into(),
                version: 2,
                channels: 3,
                image: 16,
                classes: 7,
                queued: 4,
                queue_depth: 256,
                max_batch: 8,
            }],
            batch_hist: vec![(1, 4), (8, 12)],
        }));
    }

    #[test]
    fn request_response_kinds_do_not_cross() {
        let mut buf = Vec::new();
        encode_request(&Request::Ping, &mut buf);
        assert!(matches!(
            decode_response(&buf),
            Err(WireError::UnknownKind(K_PING))
        ));
        encode_response(&Response::Pong, &mut buf);
        assert!(matches!(
            decode_request(&buf),
            Err(WireError::UnknownKind(K_PONG))
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        encode_request(&Request::Ping, &mut buf);
        buf[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&buf),
            Err(WireError::Oversized { .. })
        ));
        // Stream reader: same rejection before the payload buffer is
        // sized from the corrupt length.
        let mut cursor = std::io::Cursor::new(buf);
        let mut frame = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut frame),
            Err(FrameError::Wire(WireError::Oversized { .. }))
        ));
    }

    #[test]
    fn infer_shape_must_match_count() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Infer(InferRequest {
                model: "m".into(),
                seq: 0,
                shape: [1, 2, 2],
                data: vec![0.0; 4],
            }),
            &mut buf,
        );
        // Corrupt a shape dimension and re-checksum: structural check
        // must still catch it (the checksum only proves transport
        // integrity, not sender honesty).
        let h_at = HEADER_LEN + 2 + 1 + 8 + 4; // name len + "m" + seq + c
        buf[h_at..h_at + 4].copy_from_slice(&3u32.to_le_bytes());
        let body_len = buf.len() - TRAILER_LEN;
        let sum = checksum(&buf[..body_len]);
        buf[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_request(&buf), Err(WireError::Malformed(_))));
    }

    #[test]
    fn stream_read_frames_back_to_back() {
        let mut stream = Vec::new();
        let mut f = Vec::new();
        encode_request(&Request::Ping, &mut f);
        stream.extend_from_slice(&f);
        encode_request(&Request::Stats, &mut f);
        stream.extend_from_slice(&f);
        let mut cursor = std::io::Cursor::new(stream);
        let mut buf = Vec::new();
        assert!(read_frame(&mut cursor, &mut buf).expect("frame 1"));
        assert_eq!(decode_request(&buf).expect("ping"), Request::Ping);
        assert!(read_frame(&mut cursor, &mut buf).expect("frame 2"));
        assert_eq!(decode_request(&buf).expect("stats"), Request::Stats);
        assert!(!read_frame(&mut cursor, &mut buf).expect("clean EOF"));
    }
}
