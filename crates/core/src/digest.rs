//! Content digests for the container integrity layer.
//!
//! The v3 container format (and the `.bkcp` delta format) attach a
//! 128-bit digest to every kernel record, to the graph section, and to
//! the container as a whole, so a flipped bit anywhere in a shipped file
//! is *detected* at load time instead of silently decoding to a
//! different model.
//!
//! The algorithm — `bkh128` — is a fixed-key multiply-folding hash in
//! the wyhash/mum family: the input is consumed as little-endian 64-bit
//! words, pairs of words are mixed through a 64×64→128-bit multiply
//! whose halves are folded together, and the running state plus the
//! total length feed a final strengthening round. It was chosen over a
//! cryptographic hash because container loading is on the deployment hot
//! path (the perfsuite criterion caps verified load at 1.10x of an
//! unverified load) and a mum-style hash runs at memory speed while
//! still giving ~2⁻¹²⁸ odds of missing a corruption.
//!
//! **Threat model.** The digests detect corruption and accidental
//! tampering on unreliable channels. They are *not* a cryptographic MAC:
//! any unkeyed digest — SHA-256 included — can simply be recomputed by
//! an adversary who rewrites the container, so authenticating against a
//! deliberate attacker requires a signature over the container digest,
//! which is out of scope for this layer (the digest here is the value a
//! future signing layer would sign).
//!
//! The byte-level output is frozen by pinned test vectors: changing the
//! algorithm is a container-format break and must bump the version.

use std::fmt;

/// Size of a serialized digest in bytes.
pub const DIGEST_LEN: usize = 16;

/// A 128-bit content digest (`bkh128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Digest of `bytes`.
    pub fn of(bytes: &[u8]) -> Self {
        bkh128(bytes)
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Parse a digest back from its serialized form.
    pub fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Lowercase hex rendering (what error messages and `bnnkc inspect`
    /// print).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            use fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Fixed keys, nothing-up-my-sleeve style: the first bytes of the magic
/// strings the formats use, expanded to odd 64-bit constants.
const K0: u64 = 0x424b_434d_9e37_79b9; // "BKCM" | golden-ratio tail
const K1: u64 = 0x424b_4350_85eb_ca87; // "BKCP" | murmur3 tail
const K2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const K3: u64 = 0x1656_67b1_9e37_79f9;

/// 64×64→128 multiply folded to 64 bits (the `mum` primitive).
#[inline]
fn mum(a: u64, b: u64) -> u64 {
    let p = (a as u128).wrapping_mul(b as u128);
    (p as u64) ^ ((p >> 64) as u64)
}

#[inline]
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Little-endian read of up to 8 trailing bytes, zero-extended.
#[inline]
fn read_tail_u64(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// The `bkh128` core: two independent 64-bit lanes, each folding a pair
/// of input words per 32-byte block, strengthened by a final pass that
/// mixes both lanes with the input length.
fn bkh128(bytes: &[u8]) -> Digest {
    let len = bytes.len();
    let mut a = K0 ^ (len as u64).wrapping_mul(K2);
    let mut b = K1 ^ (len as u64).rotate_left(32).wrapping_mul(K3);

    let mut off = 0;
    while off + 32 <= len {
        let (w0, w1) = (read_u64(bytes, off), read_u64(bytes, off + 8));
        let (w2, w3) = (read_u64(bytes, off + 16), read_u64(bytes, off + 24));
        a = mum(w0 ^ K2, w1 ^ a);
        b = mum(w2 ^ K3, w3 ^ b);
        off += 32;
    }
    // Tail: whole words into alternating lanes, then the ragged end.
    let mut lane = 0;
    while off + 8 <= len {
        let w = read_u64(bytes, off);
        if lane == 0 {
            a = mum(w ^ K2, a ^ K1);
        } else {
            b = mum(w ^ K3, b ^ K0);
        }
        lane ^= 1;
        off += 8;
    }
    if off < len {
        let w = read_tail_u64(&bytes[off..]);
        a = mum(w ^ K2, a ^ ((len - off) as u64 | 0x100));
    }

    // Finalization: three cross-lane rounds so every input bit reaches
    // every output bit (flipping one payload bit flips ~half the digest).
    for _ in 0..3 {
        let na = mum(a ^ K0, b ^ K2);
        let nb = mum(b ^ K1, a ^ K3);
        a = na;
        b = nb;
    }
    let mut out = [0u8; DIGEST_LEN];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    Digest(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The on-disk digest values are frozen: these vectors pin the exact
    /// output so an accidental algorithm change (which would orphan every
    /// shipped v3 container) fails loudly here.
    #[test]
    fn pinned_vectors_freeze_the_format() {
        let cases: [(&[u8], &str); 4] = [
            (b"", "242b8d67906529bf455599fcff8dda1d"),
            (b"BKCM", "42e278272e64a0a30b6f61a8fe3197f0"),
            (
                b"The quick brown fox jumps over the lazy dog",
                "0c06aa42da2ffc7a7236ee214d640b80",
            ),
            (&[0u8; 64], "eb8ba1141fac1b35c32849c58d7f40cd"),
        ];
        for (input, hex) in cases {
            assert_eq!(Digest::of(input).to_hex(), hex, "input {input:?}");
        }
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest() {
        // The property the tamper harness leans on, checked directly at
        // the digest level across all block/tail code paths.
        for len in [1usize, 7, 8, 9, 31, 32, 33, 40, 57, 64, 100] {
            let base: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let clean = Digest::of(&base);
            for byte in 0..len {
                for bit in 0..8 {
                    let mut m = base.clone();
                    m[byte] ^= 1 << bit;
                    assert_ne!(
                        Digest::of(&m),
                        clean,
                        "len {len}: flip at byte {byte} bit {bit} collided"
                    );
                }
            }
        }
    }

    #[test]
    fn length_is_part_of_the_digest() {
        // A truncated or zero-extended input never aliases the original,
        // even when the removed/added bytes are zero.
        let base = [0u8; 96];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=96 {
            assert!(seen.insert(Digest::of(&base[..len])), "len {len} collided");
        }
    }

    #[test]
    fn roundtrip_and_display() {
        let d = Digest::of(b"roundtrip");
        assert_eq!(Digest::from_bytes(*d.as_bytes()), d);
        assert_eq!(format!("{d}"), d.to_hex());
        assert_eq!(d.to_hex().len(), 32);
    }
}
