//! Error type for the compression crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KcError>;

/// Errors produced by encoding, decoding, and clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KcError {
    /// A sequence value was not representable (>= 512).
    InvalidSequence(u16),
    /// The tree configuration is unusable.
    InvalidTreeConfig(String),
    /// A sequence had no assigned code at encode time.
    Unencodable(u16),
    /// The compressed stream ended mid-codeword or held an invalid code.
    CorruptStream(String),
    /// Kernel shape was not `[K, C, 3, 3]`.
    BadKernelShape(Vec<usize>),
}

impl fmt::Display for KcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KcError::InvalidSequence(s) => write!(f, "invalid bit sequence value {s}"),
            KcError::InvalidTreeConfig(msg) => write!(f, "invalid tree configuration: {msg}"),
            KcError::Unencodable(s) => write!(f, "bit sequence {s} has no assigned code"),
            KcError::CorruptStream(msg) => write!(f, "corrupt compressed stream: {msg}"),
            KcError::BadKernelShape(s) => write!(f, "kernel must be [K, C, 3, 3], got {s:?}"),
        }
    }
}

impl std::error::Error for KcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_sendable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KcError>();
        for e in [
            KcError::InvalidSequence(999),
            KcError::InvalidTreeConfig("x".into()),
            KcError::Unencodable(3),
            KcError::CorruptStream("y".into()),
            KcError::BadKernelShape(vec![1]),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
