//! Error type for the compression crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KcError>;

/// Errors produced by encoding, decoding, and clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KcError {
    /// A sequence value was not representable (>= 512).
    InvalidSequence(u16),
    /// The tree configuration is unusable.
    InvalidTreeConfig(String),
    /// A sequence had no assigned code at encode time.
    Unencodable(u16),
    /// The compressed stream ended mid-codeword or held an invalid code.
    CorruptStream(String),
    /// Kernel shape was not `[K, C, 3, 3]`.
    BadKernelShape(Vec<usize>),
    /// A stored content digest did not match the bytes it covers: the
    /// file was corrupted or tampered with in transit.
    IntegrityViolation {
        /// Which record failed (`"container"`, `"graph"`, `"kernel 3"`,
        /// `"patch"`, `"base container"`, `"patched container"`, …).
        record: String,
        /// The digest the file claims, in hex.
        expected: String,
        /// The digest the bytes actually have, in hex.
        found: String,
    },
    /// A structurally valid container cannot be interpreted as the
    /// requested model (e.g. a v1 kernel list that is not a ReActNet
    /// schedule, or a patch applied against the wrong base).
    IncompatibleModel(String),
}

impl fmt::Display for KcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KcError::InvalidSequence(s) => write!(f, "invalid bit sequence value {s}"),
            KcError::InvalidTreeConfig(msg) => write!(f, "invalid tree configuration: {msg}"),
            KcError::Unencodable(s) => write!(f, "bit sequence {s} has no assigned code"),
            KcError::CorruptStream(msg) => write!(f, "corrupt compressed stream: {msg}"),
            KcError::BadKernelShape(s) => write!(f, "kernel must be [K, C, 3, 3], got {s:?}"),
            KcError::IntegrityViolation {
                record,
                expected,
                found,
            } => write!(
                f,
                "integrity violation in {record}: stored digest {expected}, computed {found}"
            ),
            KcError::IncompatibleModel(msg) => write!(f, "incompatible model: {msg}"),
        }
    }
}

impl std::error::Error for KcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_sendable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KcError>();
        for e in [
            KcError::InvalidSequence(999),
            KcError::InvalidTreeConfig("x".into()),
            KcError::Unencodable(3),
            KcError::CorruptStream("y".into()),
            KcError::BadKernelShape(vec![1]),
            KcError::IntegrityViolation {
                record: "kernel 2".into(),
                expected: "aa".into(),
                found: "bb".into(),
            },
            KcError::IncompatibleModel("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
