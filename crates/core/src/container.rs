//! On-disk container format for compressed kernels.
//!
//! The paper stores compressed kernels "consecutively in memory as a
//! sequence of encoded words" preceded by the decoder configuration
//! (Table III). This module defines a self-describing byte container so a
//! compressed model can be written to a file and reloaded without the
//! original kernel:
//!
//! ```text
//! +--------+---------+----------------+------------------+-------------+
//! | magic  | version | kernel header  | tree section     | stream      |
//! | "BKCK" |  u16    | K, C (u32 ea.) | nodes, tables    | byte stream |
//! +--------+---------+----------------+------------------+-------------+
//! ```
//!
//! All integers are little-endian. The tree section stores each node's
//! capacity and its table of 16-bit sequence values, which is exactly
//! what the hardware's uncompressed table holds (2 bytes per entry,
//! Table IV).

use crate::bitseq::BitSeq;
use crate::codec::CompressedKernel;
use crate::digest::{Digest, DIGEST_LEN};
use crate::error::{KcError, Result};
use crate::huffman::{SimplifiedTree, TreeConfig};
use bitnn::graph::{GraphSpec, NodeSpec, OpSpec};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"BKCK";

/// Current container version.
pub const VERSION: u16 = 1;

/// Serialize one kernel record from its parts — the canonical encoding
/// shared by [`write_container`] (fresh compression output) and
/// [`Container::to_bytes`] (re-serializing a parsed record), so a record
/// always round-trips byte-identically through parse → serialize.
fn write_record(
    filters: usize,
    channels: usize,
    tree: &SimplifiedTree,
    stream_bits: usize,
    stream: &[u8],
) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(filters as u32);
    buf.put_u32_le(channels as u32);
    // Tree section.
    let nodes = tree.config().nodes();
    buf.put_u8(nodes as u8);
    for i in 0..nodes {
        buf.put_u16_le(tree.config().capacities()[i] as u16);
    }
    for i in 0..nodes {
        let table = tree.table(i);
        buf.put_u16_le(table.len() as u16);
        for &seq in table {
            buf.put_u16_le(seq.value());
        }
    }
    // Stream section.
    buf.put_u64_le(stream_bits as u64);
    buf.put_u32_le(stream.len() as u32);
    buf.put_slice(stream);
    buf.freeze()
}

/// Serialize a compressed kernel into a standalone byte container.
pub fn write_container(kernel: &CompressedKernel) -> Bytes {
    write_record(
        kernel.filters(),
        kernel.channels(),
        kernel.tree(),
        kernel.stream_bits(),
        kernel.stream(),
    )
}

/// Parsed container contents, sufficient to decode the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Output filters.
    pub filters: usize,
    /// Input channels.
    pub channels: usize,
    /// The reconstructed codebook.
    pub tree: SimplifiedTree,
    /// Exact stream length in bits.
    pub stream_bits: usize,
    /// The encoded stream.
    pub stream: Bytes,
}

impl Container {
    /// Decode the contained kernel.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] if the stream does not decode
    /// to exactly `filters * channels` sequences.
    pub fn decode_kernel(&self) -> Result<bitnn::tensor::BitTensor> {
        use crate::bitstream::BitReader;
        use bitnn::weightgen::write_sequence;
        let mut kernel = bitnn::tensor::BitTensor::zeros(&[self.filters, self.channels, 3, 3]);
        let mut reader = BitReader::with_limit(&self.stream, self.stream_bits);
        for f in 0..self.filters {
            for ch in 0..self.channels {
                let seq = self.tree.decode(&mut reader)?;
                write_sequence(&mut kernel, f, ch, seq.value());
            }
        }
        if reader.remaining() != 0 {
            return Err(KcError::CorruptStream(format!(
                "{} bits left over",
                reader.remaining()
            )));
        }
        Ok(kernel)
    }

    /// Stream-decode the contained kernel directly into its channel-packed
    /// form: Huffman stream → groups of up to 64 sequences → nine 64-bit
    /// lane words per group (the paper's decode + packing unit, Fig. 6) —
    /// with no intermediate `[K, C, 3, 3]` tensor. Bit-exact with packing
    /// the output of [`Container::decode_kernel`].
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] if the stream does not decode
    /// to exactly `filters * channels` sequences.
    pub fn decode_packed(&self) -> Result<bitnn::pack::PackedKernel> {
        crate::stream_decode::GroupDecoder::new(self).collect_packed()
    }

    /// Stream-decode the contained kernel into a deduplicated
    /// [`bitnn::bank::SequenceBank`]: the table of unique 9-bit sequences
    /// (with Hamming-1 cluster references) plus per-filter index lists
    /// that the weight-stationary execution path consumes. Neither lane
    /// words nor a flat tensor are materialized.
    ///
    /// # Errors
    ///
    /// Returns [`KcError::CorruptStream`] if the stream does not decode
    /// to exactly `filters * channels` sequences.
    pub fn decode_bank(&self) -> Result<bitnn::bank::SequenceBank> {
        crate::stream_decode::GroupDecoder::new(self).collect_bank()
    }

    /// Re-serialize this parsed record to its canonical byte form —
    /// byte-identical to the [`write_container`] output it was parsed
    /// from (the strict reader admits exactly one encoding per record).
    /// This is what record content digests are computed over.
    pub fn to_bytes(&self) -> Bytes {
        write_record(
            self.filters,
            self.channels,
            &self.tree,
            self.stream_bits,
            &self.stream,
        )
    }

    /// Content digest of this record's canonical byte form.
    pub fn digest(&self) -> Digest {
        Digest::of(&self.to_bytes())
    }

    /// The decoding unit configuration (paper Table III) for this
    /// container's stream placed at `stream_ptr`.
    pub fn decoder_config(&self, stream_ptr: u64) -> crate::config::DecoderConfig {
        crate::config::DecoderConfig::for_tree(
            &self.tree,
            (self.filters * self.channels) as u64,
            stream_ptr,
            self.stream.len() as u64,
        )
    }
}

/// Parse a container produced by [`write_container`].
///
/// # Errors
///
/// Returns [`KcError::CorruptStream`] for any structural damage: bad
/// magic, unknown version, truncated sections, or inconsistent sizes.
pub fn read_container(bytes: &[u8]) -> Result<Container> {
    let mut buf = bytes;
    let need = |buf: &[u8], n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(KcError::CorruptStream(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(buf, 6, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(KcError::CorruptStream("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(KcError::CorruptStream(format!(
            "unsupported version {version}"
        )));
    }
    need(buf, 8, "kernel header")?;
    let filters = buf.get_u32_le() as usize;
    let channels = buf.get_u32_le() as usize;
    if filters == 0 || channels == 0 || filters > 1 << 20 || channels > 1 << 20 {
        return Err(KcError::CorruptStream(format!(
            "implausible kernel geometry {filters}x{channels}"
        )));
    }

    need(buf, 1, "tree header")?;
    let nodes = buf.get_u8() as usize;
    if !(2..=8).contains(&nodes) {
        return Err(KcError::CorruptStream(format!("bad node count {nodes}")));
    }
    need(buf, 2 * nodes, "capacities")?;
    let mut capacities = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        capacities.push(buf.get_u16_le() as usize);
    }
    let config = TreeConfig::with_capacities(capacities)
        .map_err(|e| KcError::CorruptStream(format!("bad tree config: {e}")))?;

    // Rebuild the assignment from the stored tables: the ranked order is
    // simply the concatenation of the tables.
    let mut ranked = Vec::new();
    let mut seen = [false; 512];
    for i in 0..nodes {
        need(buf, 2, "table length")?;
        let len = buf.get_u16_le() as usize;
        if i + 1 < nodes && len > config.capacities()[i] {
            return Err(KcError::CorruptStream(format!(
                "node {i} overflows its capacity"
            )));
        }
        need(buf, 2 * len, "table entries")?;
        for _ in 0..len {
            let v = buf.get_u16_le();
            let seq = BitSeq::new(v)
                .map_err(|_| KcError::CorruptStream(format!("invalid sequence {v}")))?;
            if seen[v as usize] {
                return Err(KcError::CorruptStream(format!("duplicate sequence {v}")));
            }
            seen[v as usize] = true;
            ranked.push(seq);
        }
    }
    let tree = SimplifiedTree::from_ranked(&ranked, config);

    need(buf, 12, "stream header")?;
    let stream_bits = buf.get_u64_le() as usize;
    let stream_len = buf.get_u32_le() as usize;
    // The writer emits exactly ceil(stream_bits / 8) bytes: anything
    // longer smuggles unparsed trailing garbage, anything shorter cannot
    // hold the payload.
    if stream_len != stream_bits.div_ceil(8) {
        return Err(KcError::CorruptStream(format!(
            "stream length {stream_len} bytes inconsistent with {stream_bits} bits"
        )));
    }
    need(buf, stream_len, "stream body")?;
    let stream = Bytes::copy_from_slice(&buf[..stream_len]);
    buf.advance(stream_len);
    if buf.remaining() != 0 {
        return Err(KcError::CorruptStream(format!(
            "{} trailing bytes after the stream",
            buf.remaining()
        )));
    }
    // The final byte's padding bits (below the last payload bit,
    // MSB-first layout) must be zero, exactly as the writer left them.
    if !stream_bits.is_multiple_of(8) {
        let pad_bits = 8 - stream_bits % 8;
        let last = stream[stream.len() - 1];
        if last & ((1u8 << pad_bits) - 1) != 0 {
            return Err(KcError::CorruptStream(
                "nonzero padding bits in the final stream byte".into(),
            ));
        }
    }
    Ok(Container {
        filters,
        channels,
        tree,
        stream_bits,
        stream,
    })
}

/// Multi-kernel model container magic.
pub const MODEL_MAGIC: &[u8; 4] = b"BKCM";

/// Model container version that carries a serialized graph topology
/// alongside the kernel streams.
pub const MODEL_VERSION_V2: u16 = 2;

/// Model container version with mandatory integrity records: every
/// kernel record and the graph section carry a content digest, and a
/// whole-container digest trailer closes the file. Reading a v3
/// container verifies all of them, so any single-byte corruption is
/// reported as [`KcError::IntegrityViolation`] instead of silently
/// decoding to a different model.
pub const MODEL_VERSION_V3: u16 = 3;

/// A parsed model container: the compressed kernel records plus, for
/// v2/v3 containers, the model-graph topology they belong to.
///
/// v1 containers (13 anonymous ReActNet kernels) still parse — `spec` is
/// `None` and [`ModelContainer::spec_or_reactnet`] reconstructs the
/// scaled ReActNet schedule from the kernel dimensions, so every v1 file
/// auto-upgrades to the graph world on load.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelContainer {
    /// The format version the file was read with (1, 2, or 3).
    pub version: u16,
    /// The serialized graph topology (v2/v3), or `None` for v1.
    pub spec: Option<GraphSpec>,
    /// Per-kernel records, in the spec's compressible-conv order.
    pub kernels: Vec<Container>,
}

impl ModelContainer {
    /// Per-kernel `(filters, channels)` dimensions.
    pub fn kernel_dims(&self) -> Vec<(usize, usize)> {
        self.kernels
            .iter()
            .map(|c| (c.filters, c.channels))
            .collect()
    }

    /// The graph topology of this container: the stored spec for v2/v3,
    /// or the ReActNet schedule reconstructed from the kernel dimensions
    /// for v1 (`image` sizes the reconstructed input node).
    ///
    /// # Errors
    ///
    /// Returns [`KcError::IncompatibleModel`] when a v1 kernel list
    /// cannot be a ReActNet schedule.
    pub fn spec_or_reactnet(&self, image: usize) -> Result<GraphSpec> {
        match &self.spec {
            Some(spec) => Ok(spec.clone()),
            None => {
                let cfg =
                    bitnn::graph::arch::reactnet_config_from_kernels(&self.kernel_dims(), image)
                        .map_err(|e| KcError::IncompatibleModel(e.to_string()))?;
                bitnn::graph::arch::reactnet_spec(&cfg)
                    .map_err(|e| KcError::IncompatibleModel(e.to_string()))
            }
        }
    }

    /// Per-record content digests, in record order (recomputed from the
    /// canonical record bytes — identical to the digests a v3 file
    /// stores).
    pub fn record_digests(&self) -> Vec<Digest> {
        self.kernels.iter().map(Container::digest).collect()
    }
}

/// Serialize a whole model's compressed 3×3 kernels into a **v1**
/// container: `MODEL_MAGIC`, version 1, kernel count, then
/// length-prefixed [`write_container`] records. Kept for compatibility;
/// new files should use [`write_model_container_v2`].
pub fn write_model_container(kernels: &[CompressedKernel]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MODEL_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(kernels.len() as u32);
    for k in kernels {
        let record = write_container(k);
        buf.put_u32_le(record.len() as u32);
        buf.put_slice(&record);
    }
    buf.freeze()
}

/// Serialize a model's graph topology plus its compressed kernels into a
/// **v2** container:
///
/// ```text
/// +--------+-----------+---------------+---------+-------------------+
/// | magic  | version 2 | graph section | count   | kernel records    |
/// | "BKCM" |  u16      | arch + nodes  | u32     | len-prefixed v1   |
/// +--------+-----------+---------------+---------+-------------------+
/// ```
///
/// The kernel records must line up one-to-one with the spec's
/// compressible 3×3 convolutions ([`GraphSpec::conv3_geometries`]), in
/// topological order.
///
/// # Errors
///
/// Returns [`KcError::CorruptStream`] if the spec does not validate or
/// the kernels disagree with its conv geometry.
pub fn write_model_container_v2(spec: &GraphSpec, kernels: &[CompressedKernel]) -> Result<Bytes> {
    spec.validate()
        .map_err(|e| KcError::CorruptStream(format!("invalid graph spec: {e}")))?;
    check_spec_kernels(
        spec,
        kernels.iter().map(|k| (k.filters(), k.channels())),
        kernels.len(),
    )?;
    let mut buf = BytesMut::new();
    buf.put_slice(MODEL_MAGIC);
    buf.put_u16_le(MODEL_VERSION_V2);
    write_graph_spec(&mut buf, spec)?;
    buf.put_u32_le(kernels.len() as u32);
    for k in kernels {
        let record = write_container(k);
        buf.put_u32_le(record.len() as u32);
        buf.put_slice(&record);
    }
    Ok(buf.freeze())
}

/// Serialize a model into a **v3** container — the v2 layout plus
/// mandatory integrity records:
///
/// ```text
/// +--------+-----------+-------+--------+-------+--------------------+-----------+
/// | magic  | version 3 | graph | graph  | count | records, each:     | container |
/// | "BKCM" |  u16      | sect. | digest |  u32  | len u32 + body +   | digest    |
/// |        |           |       |  16 B  |       | record digest 16 B |   16 B    |
/// +--------+-----------+-------+--------+-------+--------------------+-----------+
/// ```
///
/// Each record digest covers that record's bytes, the graph digest
/// covers the graph section, and the trailing container digest covers
/// the *digest transcript* (magic, version, graph digest, count, and
/// every record's length + digest) — so every payload byte is hashed
/// exactly once, yet a single-byte change anywhere in the file (digest
/// fields and trailer included) breaks at least one comparison.
///
/// # Errors
///
/// Same conditions as [`write_model_container_v2`].
pub fn write_model_container_v3(spec: &GraphSpec, kernels: &[CompressedKernel]) -> Result<Bytes> {
    spec.validate()
        .map_err(|e| KcError::CorruptStream(format!("invalid graph spec: {e}")))?;
    check_spec_kernels(
        spec,
        kernels.iter().map(|k| (k.filters(), k.channels())),
        kernels.len(),
    )?;
    let records: Vec<Bytes> = kernels.iter().map(write_container).collect();
    assemble_v3(spec, &records)
}

/// Assemble v3 bytes from a graph spec plus already-serialized record
/// bytes — the shared back end of [`write_model_container_v3`] and the
/// patch applier (which rebuilds records rather than recompressing
/// kernels). Callers are responsible for the spec/kernel cross-check.
pub(crate) fn assemble_v3(spec: &GraphSpec, records: &[Bytes]) -> Result<Bytes> {
    let mut graph = BytesMut::new();
    write_graph_spec(&mut graph, spec)?;
    let graph_digest = Digest::of(&graph);

    let mut buf = BytesMut::new();
    let mut transcript = BytesMut::new();
    buf.put_slice(MODEL_MAGIC);
    buf.put_u16_le(MODEL_VERSION_V3);
    transcript.put_slice(MODEL_MAGIC);
    transcript.put_u16_le(MODEL_VERSION_V3);
    buf.put_slice(&graph);
    buf.put_slice(graph_digest.as_bytes());
    transcript.put_slice(graph_digest.as_bytes());
    buf.put_u32_le(records.len() as u32);
    transcript.put_u32_le(records.len() as u32);
    for r in records {
        let d = Digest::of(r);
        buf.put_u32_le(r.len() as u32);
        buf.put_slice(r);
        buf.put_slice(d.as_bytes());
        transcript.put_u32_le(r.len() as u32);
        transcript.put_slice(d.as_bytes());
    }
    buf.put_slice(Digest::of(&transcript).as_bytes());
    Ok(buf.freeze())
}

/// Cross-check a spec's compressible-conv geometry against a kernel
/// list's `(filters, channels)` dimensions — shared by the v2 writer and
/// reader so the two sides can never drift apart.
pub(crate) fn check_spec_kernels<'a, I>(spec: &GraphSpec, dims: I, count: usize) -> Result<()>
where
    I: Iterator<Item = (usize, usize)> + 'a,
{
    let convs = spec.conv3_geometries();
    if convs.len() != count {
        return Err(KcError::CorruptStream(format!(
            "graph spec has {} compressible convs, got {} kernels",
            convs.len(),
            count
        )));
    }
    for (i, (g, (filters, channels))) in convs.iter().zip(dims).enumerate() {
        if (g.filters, g.channels) != (filters, channels) {
            return Err(KcError::CorruptStream(format!(
                "kernel {i} is {filters}x{channels}, the graph's conv {i} needs {}x{}",
                g.filters, g.channels
            )));
        }
    }
    Ok(())
}

/// Graph-section op tags (one byte each).
mod op_tag {
    pub const INPUT: u8 = 0;
    pub const STEM_CONV: u8 = 1;
    pub const SIGN: u8 = 2;
    pub const BIN_CONV: u8 = 3;
    pub const BATCH_NORM: u8 = 4;
    pub const ACT: u8 = 5;
    pub const AVG_POOL: u8 = 6;
    pub const CHANNEL_DUP: u8 = 7;
    pub const ADD: u8 = 8;
    pub const GLOBAL_AVG_POOL: u8 = 9;
    pub const CLASSIFIER: u8 = 10;
}

/// Serialize the graph section: arch string, node count, then per node a
/// one-byte op tag, op parameters, and the input edge list.
pub(crate) fn write_graph_spec(buf: &mut BytesMut, spec: &GraphSpec) -> Result<()> {
    // Every field is range-checked before casting: a value that does not
    // fit its wire field is a write-time error, never a silent
    // truncation that would round-trip to a different topology.
    fn fit_u8(v: usize, what: &str) -> Result<u8> {
        u8::try_from(v)
            .map_err(|_| KcError::CorruptStream(format!("{what} {v} exceeds its 8-bit field")))
    }
    fn fit_u32(v: usize, what: &str) -> Result<u32> {
        u32::try_from(v)
            .map_err(|_| KcError::CorruptStream(format!("{what} {v} exceeds its 32-bit field")))
    }
    if spec.arch.len() > u16::MAX as usize {
        return Err(KcError::CorruptStream("arch name too long".into()));
    }
    buf.put_u16_le(spec.arch.len() as u16);
    buf.put_slice(spec.arch.as_bytes());
    if spec.nodes.len() > 65_536 {
        // Mirror of the read-side cap: anything larger could never load.
        return Err(KcError::CorruptStream(format!(
            "implausible node count {}",
            spec.nodes.len()
        )));
    }
    buf.put_u32_le(spec.nodes.len() as u32);
    for node in &spec.nodes {
        match node.op {
            OpSpec::Input { channels, image } => {
                buf.put_u8(op_tag::INPUT);
                buf.put_u32_le(fit_u32(channels, "input channels")?);
                buf.put_u32_le(fit_u32(image, "image size")?);
            }
            OpSpec::StemConv { out_ch, stride } => {
                buf.put_u8(op_tag::STEM_CONV);
                buf.put_u32_le(fit_u32(out_ch, "stem out_ch")?);
                buf.put_u8(fit_u8(stride, "stem stride")?);
            }
            OpSpec::Sign => buf.put_u8(op_tag::SIGN),
            OpSpec::BinConv {
                out_ch,
                kh,
                kw,
                stride,
                pad,
            } => {
                buf.put_u8(op_tag::BIN_CONV);
                buf.put_u32_le(fit_u32(out_ch, "conv out_ch")?);
                buf.put_u8(fit_u8(kh, "conv kh")?);
                buf.put_u8(fit_u8(kw, "conv kw")?);
                buf.put_u8(fit_u8(stride, "conv stride")?);
                buf.put_u8(fit_u8(pad, "conv pad")?);
            }
            OpSpec::BatchNorm => buf.put_u8(op_tag::BATCH_NORM),
            OpSpec::Act => buf.put_u8(op_tag::ACT),
            OpSpec::AvgPool2x2 => buf.put_u8(op_tag::AVG_POOL),
            OpSpec::ChannelDup => buf.put_u8(op_tag::CHANNEL_DUP),
            OpSpec::Add => buf.put_u8(op_tag::ADD),
            OpSpec::GlobalAvgPool => buf.put_u8(op_tag::GLOBAL_AVG_POOL),
            OpSpec::Classifier { classes } => {
                buf.put_u8(op_tag::CLASSIFIER);
                buf.put_u32_le(fit_u32(classes, "classifier classes")?);
            }
        }
        buf.put_u8(fit_u8(node.inputs.len(), "input arity")?);
        for &src in &node.inputs {
            buf.put_u32_le(fit_u32(src, "input edge")?);
        }
    }
    Ok(())
}

/// Parse the graph section written by [`write_graph_spec`]. Structural
/// bounds are checked here; full topology/shape validation runs through
/// [`GraphSpec::validate`] afterwards.
pub(crate) fn read_graph_spec(buf: &mut &[u8]) -> Result<GraphSpec> {
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(KcError::CorruptStream(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(buf, 2, "arch length")?;
    let arch_len = buf.get_u16_le() as usize;
    need(buf, arch_len, "arch name")?;
    let arch = std::str::from_utf8(&buf[..arch_len])
        .map_err(|_| KcError::CorruptStream("arch name is not UTF-8".into()))?
        .to_string();
    buf.advance(arch_len);
    need(buf, 4, "node count")?;
    let count = buf.get_u32_le() as usize;
    if count == 0 || count > 65_536 {
        return Err(KcError::CorruptStream(format!(
            "implausible node count {count}"
        )));
    }
    let mut nodes = Vec::with_capacity(count);
    for i in 0..count {
        need(buf, 1, "op tag")?;
        let tag = buf.get_u8();
        let op = match tag {
            op_tag::INPUT => {
                need(buf, 8, "input params")?;
                OpSpec::Input {
                    channels: buf.get_u32_le() as usize,
                    image: buf.get_u32_le() as usize,
                }
            }
            op_tag::STEM_CONV => {
                need(buf, 5, "stem params")?;
                OpSpec::StemConv {
                    out_ch: buf.get_u32_le() as usize,
                    stride: buf.get_u8() as usize,
                }
            }
            op_tag::SIGN => OpSpec::Sign,
            op_tag::BIN_CONV => {
                need(buf, 8, "conv params")?;
                OpSpec::BinConv {
                    out_ch: buf.get_u32_le() as usize,
                    kh: buf.get_u8() as usize,
                    kw: buf.get_u8() as usize,
                    stride: buf.get_u8() as usize,
                    pad: buf.get_u8() as usize,
                }
            }
            op_tag::BATCH_NORM => OpSpec::BatchNorm,
            op_tag::ACT => OpSpec::Act,
            op_tag::AVG_POOL => OpSpec::AvgPool2x2,
            op_tag::CHANNEL_DUP => OpSpec::ChannelDup,
            op_tag::ADD => OpSpec::Add,
            op_tag::GLOBAL_AVG_POOL => OpSpec::GlobalAvgPool,
            op_tag::CLASSIFIER => {
                need(buf, 4, "classifier params")?;
                OpSpec::Classifier {
                    classes: buf.get_u32_le() as usize,
                }
            }
            other => {
                return Err(KcError::CorruptStream(format!(
                    "node {i}: unknown op tag {other}"
                )))
            }
        };
        need(buf, 1, "input count")?;
        let arity = buf.get_u8() as usize;
        need(buf, 4 * arity, "input edges")?;
        let inputs = (0..arity).map(|_| buf.get_u32_le() as usize).collect();
        nodes.push(NodeSpec { op, inputs });
    }
    Ok(GraphSpec { arch, nodes })
}

/// Parse a model container (v1, v2, or v3) back into a
/// [`ModelContainer`].
///
/// For v2/v3 the embedded graph spec is fully validated
/// ([`GraphSpec::validate`]) and the kernel records are cross-checked
/// against its compressible-conv geometry, so a successfully parsed
/// container is always deployable. For v3 every integrity record is
/// verified: the per-record digests, the graph-section digest, and the
/// whole-container digest trailer — any mismatch is a
/// [`KcError::IntegrityViolation`] naming the damaged record with the
/// stored and computed digests.
///
/// # Errors
///
/// Returns [`KcError::CorruptStream`] on structural damage and
/// [`KcError::IntegrityViolation`] on digest mismatches.
pub fn read_model_container(bytes: &[u8]) -> Result<ModelContainer> {
    read_model_container_impl(bytes, true)
}

/// Parse a model container *without* verifying v3 digests (the fields
/// are still parsed and skipped; structure checks all run). This exists
/// so the integrity-verification overhead on load can be measured — the
/// perfsuite `container_integrity` criterion compares this path against
/// [`read_model_container`]. Deployment code must use the verifying
/// reader.
pub fn read_model_container_unverified(bytes: &[u8]) -> Result<ModelContainer> {
    read_model_container_impl(bytes, false)
}

fn read_model_container_impl(bytes: &[u8], verify: bool) -> Result<ModelContainer> {
    let mut buf = bytes;
    if buf.remaining() < 10 {
        return Err(KcError::CorruptStream("truncated model header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MODEL_MAGIC {
        return Err(KcError::CorruptStream("bad model magic".into()));
    }
    let version = buf.get_u16_le();
    let integrity = version == MODEL_VERSION_V3;
    // The digest transcript a v3 trailer covers: magic, version, graph
    // digest, then every record's length + digest (payload bytes reach
    // the trailer through their digests, so verification hashes each
    // byte exactly once).
    let mut transcript = BytesMut::new();
    transcript.put_slice(MODEL_MAGIC);
    transcript.put_u16_le(version);
    let read_digest = |buf: &mut &[u8], what: &str| -> Result<Digest> {
        if buf.remaining() < DIGEST_LEN {
            return Err(KcError::CorruptStream(format!("truncated {what} digest")));
        }
        let mut d = [0u8; DIGEST_LEN];
        buf.copy_to_slice(&mut d);
        Ok(Digest::from_bytes(d))
    };
    let check = |record: String, stored: Digest, computed: Digest| -> Result<()> {
        if verify && stored != computed {
            return Err(KcError::IntegrityViolation {
                record,
                expected: stored.to_hex(),
                found: computed.to_hex(),
            });
        }
        Ok(())
    };
    let spec = match version {
        VERSION => None,
        MODEL_VERSION_V2 | MODEL_VERSION_V3 => {
            let graph_start = buf;
            let spec = read_graph_spec(&mut buf)?;
            if integrity {
                let graph_bytes = &graph_start[..graph_start.len() - buf.len()];
                let stored = read_digest(&mut buf, "graph")?;
                transcript.put_slice(stored.as_bytes());
                check("graph".into(), stored, Digest::of(graph_bytes))?;
            }
            spec.validate()
                .map_err(|e| KcError::CorruptStream(format!("invalid graph section: {e}")))?;
            Some(spec)
        }
        other => {
            return Err(KcError::CorruptStream(format!(
                "unsupported model version {other}"
            )))
        }
    };
    if buf.remaining() < 4 {
        return Err(KcError::CorruptStream("truncated kernel count".into()));
    }
    let count = buf.get_u32_le() as usize;
    transcript.put_u32_le(count as u32);
    if count > 4096 {
        return Err(KcError::CorruptStream(format!(
            "implausible kernel count {count}"
        )));
    }
    let mut kernels = Vec::with_capacity(count);
    for i in 0..count {
        if buf.remaining() < 4 {
            return Err(KcError::CorruptStream(format!(
                "truncated record {i} length"
            )));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(KcError::CorruptStream(format!("truncated record {i} body")));
        }
        let body = &buf[..len];
        buf.advance(len);
        if integrity {
            let stored = read_digest(&mut buf, "record")?;
            transcript.put_u32_le(len as u32);
            transcript.put_slice(stored.as_bytes());
            check(format!("kernel {}", i + 1), stored, Digest::of(body))?;
        }
        // read_container rejects a record whose declared length exceeds
        // its actual content (trailing bytes) or whose stream section is
        // padded with garbage, so a record length can neither hide data
        // nor swallow the next record's header.
        kernels.push(read_container(body)?);
    }
    if integrity {
        let stored = read_digest(&mut buf, "container")?;
        check("container".into(), stored, Digest::of(&transcript))?;
    }
    if buf.remaining() != 0 {
        return Err(KcError::CorruptStream(format!(
            "{} trailing bytes after the last record",
            buf.remaining()
        )));
    }
    if let Some(spec) = &spec {
        check_spec_kernels(
            spec,
            kernels.iter().map(|k| (k.filters, k.channels)),
            kernels.len(),
        )?;
    }
    Ok(ModelContainer {
        version,
        spec,
        kernels,
    })
}

/// Write `bytes` to `path` atomically: the content lands in a temporary
/// file in the same directory, is fsynced, and is renamed over the
/// destination — so a crash, power cut, or interrupted process at any
/// point leaves either the previous file or the complete new one at
/// `path`, never a torn container. The directory entry is fsynced too,
/// making the rename itself durable.
///
/// # Errors
///
/// Propagates I/O errors; the temporary file is removed on failure.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("output path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Persist the rename: fsync the containing directory.
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::KernelCodec;
    use bitnn::weightgen::SeqDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compressed() -> CompressedKernel {
        let mut rng = StdRng::seed_from_u64(8);
        let kernel = SeqDistribution::for_block(3, 0).sample_kernel(48, 48, &mut rng);
        KernelCodec::paper().compress(&kernel).unwrap()
    }

    #[test]
    fn container_roundtrip_is_lossless() {
        let ck = compressed();
        let original = ck.decompress().unwrap();
        let bytes = write_container(&ck);
        let parsed = read_container(&bytes).unwrap();
        assert_eq!(parsed.filters, 48);
        assert_eq!(parsed.channels, 48);
        assert_eq!(parsed.decode_kernel().unwrap(), original);
    }

    #[test]
    fn bad_magic_rejected() {
        let ck = compressed();
        let mut bytes = write_container(&ck).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            read_container(&bytes),
            Err(KcError::CorruptStream(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let ck = compressed();
        let mut bytes = write_container(&ck).to_vec();
        bytes[4] = 0xFF;
        assert!(read_container(&bytes).is_err());
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let ck = compressed();
        let bytes = write_container(&ck);
        // Cut at a spread of offsets including section boundaries.
        for cut in [
            0usize,
            3,
            5,
            9,
            13,
            14,
            20,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let r = read_container(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn flipped_stream_bits_fail_or_differ() {
        // Corrupting the stream body must never panic: it either errors
        // out (invalid prefix / leftover bits) or decodes to a different,
        // well-formed kernel.
        let ck = compressed();
        let original = ck.decompress().unwrap();
        let clean = write_container(&ck);
        let stream_start = clean.len() - ck.stream().len();
        for i in 0..32.min(ck.stream().len()) {
            let mut bytes = clean.to_vec();
            bytes[stream_start + i] ^= 0x55;
            match read_container(&bytes) {
                Err(_) => {}
                Ok(c) => match c.decode_kernel() {
                    Err(_) => {}
                    Ok(k) => assert_ne!(k, original, "flip at stream byte {i} went unnoticed"),
                },
            }
        }
    }

    #[test]
    fn duplicate_table_entries_rejected() {
        let ck = compressed();
        let mut bytes = write_container(&ck).to_vec();
        // First table entry sits after: 4 magic + 2 ver + 8 kc + 1 nodes +
        // 8 caps + 2 len = 25; duplicate it into the second entry.
        let (a, b) = (25usize, 27usize);
        bytes[b] = bytes[a];
        bytes[b + 1] = bytes[a + 1];
        assert!(read_container(&bytes).is_err());
    }

    #[test]
    fn implausible_geometry_rejected() {
        let ck = compressed();
        let mut bytes = write_container(&ck).to_vec();
        // Zero filters.
        bytes[6..10].copy_from_slice(&0u32.to_le_bytes());
        assert!(read_container(&bytes).is_err());
    }

    #[test]
    fn model_container_roundtrip() {
        let codec = KernelCodec::paper_clustered();
        let mut kernels = Vec::new();
        let mut originals = Vec::new();
        for block in 1..=3 {
            let mut rng = StdRng::seed_from_u64(block as u64);
            let k = SeqDistribution::for_block(block, 0).sample_kernel(
                16 * block,
                16 * block,
                &mut rng,
            );
            let ck = codec.compress(&k).unwrap();
            originals.push(ck.decompress().unwrap());
            kernels.push(ck);
        }
        let bytes = write_model_container(&kernels);
        let parsed = read_model_container(&bytes).unwrap();
        assert!(parsed.spec.is_none(), "v1 containers carry no topology");
        assert_eq!(parsed.kernels.len(), 3);
        for (c, orig) in parsed.kernels.iter().zip(&originals) {
            assert_eq!(&c.decode_kernel().unwrap(), orig);
        }
    }

    /// v2: topology + kernels round-trip, and the embedded spec is
    /// cross-checked against the kernel records.
    #[test]
    fn model_container_v2_roundtrip_and_validation() {
        use bitnn::graph::arch::{build_spec, sample_conv3_kernels, Arch};
        let codec = KernelCodec::paper();
        for arch in [Arch::VggSmall, Arch::ResNetLite] {
            let spec = build_spec(arch, 0.0625, 32).unwrap();
            let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 5)
                .unwrap()
                .iter()
                .map(|k| codec.compress(k).unwrap())
                .collect();
            let bytes = write_model_container_v2(&spec, &kernels).unwrap();
            let parsed = read_model_container(&bytes).unwrap();
            assert_eq!(parsed.spec.as_ref(), Some(&spec));
            assert_eq!(parsed.kernels.len(), kernels.len());
            assert_eq!(parsed.spec_or_reactnet(32).unwrap(), spec);
            for (c, k) in parsed.kernels.iter().zip(&kernels) {
                assert_eq!(c.decode_kernel().unwrap(), k.decompress().unwrap());
            }
            // Dropping a kernel breaks the spec cross-check on write.
            assert!(write_model_container_v2(&spec, &kernels[1..]).is_err());
        }
    }

    #[test]
    fn model_container_v2_detects_damage() {
        use bitnn::graph::arch::{build_spec, sample_conv3_kernels, Arch};
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::VggSmall, 0.0625, 32).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 9)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        let clean = write_model_container_v2(&spec, &kernels).unwrap().to_vec();
        assert!(read_model_container(&clean).is_ok());
        // Truncations across the graph section and records.
        for cut in [5usize, 7, 9, 15, 40, clean.len() / 2, clean.len() - 1] {
            assert!(read_model_container(&clean[..cut]).is_err(), "cut {cut}");
        }
        // An unknown op tag in the graph section.
        let mut bad = clean.clone();
        // arch len (2) + arch + node count (4) puts the first op tag at:
        let first_tag = 4 + 2 + 2 + spec.arch.len() + 4;
        bad[first_tag] = 0xEE;
        assert!(read_model_container(&bad).is_err());
        // Trailing garbage.
        let mut bad = clean.clone();
        bad.push(0);
        assert!(read_model_container(&bad).is_err());
    }

    /// Wire fields that cannot hold a spec value are write-time errors,
    /// never silent truncations that round-trip to a different topology.
    #[test]
    fn v2_rejects_fields_that_overflow_the_wire_format() {
        use bitnn::graph::arch::{build_spec, sample_conv3_kernels, Arch};
        use bitnn::graph::OpSpec;
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::VggSmall, 0.0625, 32).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 2)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        // A conv pad of 300 validates (it only grows the feature map) but
        // cannot be represented in the u8 wire field.
        let mut bad = spec.clone();
        for node in &mut bad.nodes {
            if let OpSpec::BinConv { pad, .. } = &mut node.op {
                *pad = 300;
            }
        }
        if bad.validate().is_ok() {
            let err = write_model_container_v2(&bad, &kernels).unwrap_err();
            assert!(err.to_string().contains("exceeds its 8-bit field"), "{err}");
        }
    }

    /// A v1 container of ReActNet-shaped kernels auto-upgrades to a
    /// validated ReActNet graph spec.
    #[test]
    fn v1_container_auto_upgrades_to_reactnet_spec() {
        use bitnn::graph::arch::{build_spec, sample_conv3_kernels, Arch};
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::ReActNet, 0.125, 32).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 1)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        let parsed = read_model_container(&write_model_container(&kernels)).unwrap();
        assert!(parsed.spec.is_none());
        let upgraded = parsed.spec_or_reactnet(32).unwrap();
        assert_eq!(upgraded, spec);
        // Non-ReActNet kernel lists refuse to masquerade as ReActNet.
        let parsed = read_model_container(&write_model_container(&kernels[..3])).unwrap();
        assert!(parsed.spec_or_reactnet(32).is_err());
    }

    #[test]
    fn model_container_detects_damage() {
        let codec = KernelCodec::paper();
        let mut rng = StdRng::seed_from_u64(1);
        let k = SeqDistribution::for_block(1, 0).sample_kernel(16, 16, &mut rng);
        let ck = codec.compress(&k).unwrap();
        let bytes = write_model_container(&[ck]).to_vec();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(read_model_container(&bad).is_err());
        // Truncations.
        for cut in [5, 9, 12, bytes.len() - 1] {
            assert!(read_model_container(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Oversized record length.
        let mut bad = bytes.clone();
        bad[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_model_container(&bad).is_err());
    }

    #[test]
    fn stream_bits_exceeding_bytes_rejected() {
        let ck = compressed();
        let bytes = write_container(&ck).to_vec();
        let stream_len_off = bytes.len() - ck.stream().len() - 4 - 8;
        let mut bad = bytes.clone();
        bad[stream_len_off..stream_len_off + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(read_container(&bad).is_err());
    }

    #[test]
    fn oversized_stream_len_with_garbage_rejected() {
        // A stream_len larger than ceil(stream_bits / 8) used to parse
        // fine with trailing garbage bytes; both must now be rejected.
        let ck = compressed();
        let clean = write_container(&ck).to_vec();
        let len_off = clean.len() - ck.stream().len() - 4;
        let mut bad = clean.clone();
        let inflated = (ck.stream().len() + 3) as u32;
        bad[len_off..len_off + 4].copy_from_slice(&inflated.to_le_bytes());
        bad.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        assert!(matches!(
            read_container(&bad),
            Err(KcError::CorruptStream(_))
        ));
        // Trailing bytes after a correctly-sized stream are also rejected.
        let mut trailing = clean.clone();
        trailing.push(0x00);
        assert!(read_container(&trailing).is_err());
    }

    #[test]
    fn nonzero_padding_bits_rejected() {
        let ck = compressed();
        if ck.stream_bits().is_multiple_of(8) {
            // This seed always yields a padded final byte; guard anyway.
            return;
        }
        let mut bytes = write_container(&ck).to_vec();
        let last = bytes.len() - 1;
        bytes[last] |= 1; // lowest bit is padding under the MSB-first layout
        assert!(matches!(
            read_container(&bytes),
            Err(KcError::CorruptStream(_))
        ));
    }

    #[test]
    fn model_container_rejects_trailing_bytes_and_padded_records() {
        let codec = KernelCodec::paper();
        let mut rng = StdRng::seed_from_u64(3);
        let k = SeqDistribution::for_block(1, 0).sample_kernel(16, 16, &mut rng);
        let ck = codec.compress(&k).unwrap();
        let clean = write_model_container(std::slice::from_ref(&ck)).to_vec();
        assert!(read_model_container(&clean).is_ok());
        // Trailing garbage after the last record.
        let mut bad = clean.clone();
        bad.extend_from_slice(&[0u8; 2]);
        assert!(read_model_container(&bad).is_err());
        // A record whose length claims extra padding bytes.
        let record = write_container(&ck);
        let mut padded = Vec::new();
        padded.extend_from_slice(MODEL_MAGIC);
        padded.extend_from_slice(&VERSION.to_le_bytes());
        padded.extend_from_slice(&1u32.to_le_bytes());
        padded.extend_from_slice(&((record.len() + 1) as u32).to_le_bytes());
        padded.extend_from_slice(&record);
        padded.push(0);
        assert!(read_model_container(&padded).is_err());
    }

    fn v3_fixture() -> (GraphSpec, Vec<CompressedKernel>, Vec<u8>) {
        use bitnn::graph::arch::{build_spec, sample_conv3_kernels, Arch};
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::VggSmall, 0.0625, 32).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 21)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        let bytes = write_model_container_v3(&spec, &kernels).unwrap().to_vec();
        (spec, kernels, bytes)
    }

    #[test]
    fn model_container_v3_roundtrip_with_verification() {
        let (spec, kernels, bytes) = v3_fixture();
        let parsed = read_model_container(&bytes).unwrap();
        assert_eq!(parsed.version, MODEL_VERSION_V3);
        assert_eq!(parsed.spec.as_ref(), Some(&spec));
        assert_eq!(parsed.kernels.len(), kernels.len());
        for (c, k) in parsed.kernels.iter().zip(&kernels) {
            assert_eq!(c.decode_kernel().unwrap(), k.decompress().unwrap());
        }
        // The unverified reader parses the same structure.
        let unverified = read_model_container_unverified(&bytes).unwrap();
        assert_eq!(unverified, parsed);
        // Digest recomputation matches what the file stores.
        assert_eq!(
            parsed.record_digests(),
            kernels
                .iter()
                .map(|k| Digest::of(&write_container(k)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn v3_record_roundtrips_to_identical_bytes() {
        // to_bytes must reproduce the written record exactly — the digest
        // scheme and SAME-entry patch dedup both stand on this identity.
        let ck = compressed();
        let record = write_container(&ck);
        let parsed = read_container(&record).unwrap();
        assert_eq!(parsed.to_bytes(), record);
        assert_eq!(parsed.digest(), Digest::of(&record));
    }

    #[test]
    fn v3_detects_tampering_with_a_typed_error() {
        let (_, _, clean) = v3_fixture();
        assert!(read_model_container(&clean).is_ok());
        // Corrupt a byte in every region: graph section, a record body,
        // a stored digest, and the container trailer.
        let probes = [
            12usize,                      // graph section
            clean.len() / 2,              // some record body
            clean.len() - 1,              // container digest trailer
            clean.len() - DIGEST_LEN - 3, // last record digest area
        ];
        for &pos in &probes {
            let mut bad = clean.clone();
            bad[pos] ^= 0x01;
            let err = read_model_container(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    KcError::IntegrityViolation { .. } | KcError::CorruptStream(_)
                ),
                "byte {pos}: {err}"
            );
        }
        // The error is the typed integrity variant when structure survives:
        // flipping the final trailer byte can only be a digest mismatch.
        let mut bad = clean.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            read_model_container(&bad),
            Err(KcError::IntegrityViolation { ref record, .. }) if record == "container"
        ));
        // The unverified reader skips digest comparisons (same flip parses).
        assert!(read_model_container_unverified(&bad).is_ok());
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("bkcm-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bkcm");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "model.bkcm")
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decode_packed_matches_decode_kernel() {
        let ck = compressed();
        let bytes = write_container(&ck);
        let parsed = read_container(&bytes).unwrap();
        let streamed = parsed.decode_packed().unwrap();
        let offline = bitnn::pack::PackedKernel::pack(&parsed.decode_kernel().unwrap()).unwrap();
        assert_eq!(streamed, offline);
    }

    #[test]
    fn container_decoder_config_reflects_stream() {
        let ck = compressed();
        let parsed = read_container(&write_container(&ck)).unwrap();
        let cfg = parsed.decoder_config(0x4000);
        assert_eq!(cfg.stream_ptr, 0x4000);
        assert_eq!(cfg.num_sequences, 48 * 48);
        assert_eq!(cfg.stream_len_bytes as usize, parsed.stream.len());
        assert_eq!(cfg.node_code_lengths, ck.tree().length_table());
    }
}
