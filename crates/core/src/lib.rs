//! # kc-core — Kernel Compression for Binary Neural Networks
//!
//! The primary contribution of *"Exploiting Kernel Compression on BNNs"*
//! (DATE 2023): in a binary 3×3 kernel each channel is a 9-bit **bit
//! sequence** (512 possible values), their use frequency is heavily skewed,
//! and this can be exploited with:
//!
//! * [`freq::FreqTable`] — frequency analysis over the 512 sequences
//!   (paper Fig. 3 / Table II);
//! * [`huffman::SimplifiedTree`] — the paper's simplified Huffman code: a
//!   small chain-shaped tree whose leaves are *tables* of sequences, giving
//!   code lengths 6/8/9/12 bits for the default 32/64/64/256 node
//!   capacities (paper Fig. 4, Sec. VI);
//! * [`huffman::full`] — a canonical full Huffman coder used as the
//!   ablation baseline the simplified tree trades against;
//! * [`cluster`] — the Hamming-1 substitution that replaces rare sequences
//!   with frequent look-alikes before encoding (paper Sec. III-C), lifting
//!   the per-block compression ratio from ≈1.20x to ≈1.32x (Table V);
//! * [`codec`] — end-to-end kernel/model compression with ratio accounting
//!   (Table V and the 1.2x whole-model figure);
//! * [`config`] — the decoding unit's configuration structure (Table III);
//! * [`stream_decode`] — the software analogue of the paper's streaming
//!   decode + packing unit (Fig. 6): walks a container's Huffman stream
//!   and emits channel-packed 64-bit lane words the execution engine
//!   consumes directly.
//!
//! # Quick example
//!
//! ```
//! use bitnn::weightgen::SeqDistribution;
//! use kc_core::codec::KernelCodec;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let kernel = SeqDistribution::for_block(1, 0).sample_kernel(32, 32, &mut rng);
//! let codec = KernelCodec::paper();
//! let compressed = codec.compress(&kernel)?;
//! assert!(compressed.ratio() > 1.0);
//! let restored = compressed.decompress()?;
//! assert_eq!(restored, kernel);
//! # Ok::<(), kc_core::KcError>(())
//! ```

#![warn(missing_docs)]

pub mod actseq;
pub mod bitseq;
pub mod bitstream;
pub mod cluster;
pub mod codec;
pub mod config;
pub mod container;
pub mod delta;
pub mod digest;
pub mod error;
pub mod freq;
pub mod huffman;
pub mod stream_decode;
pub mod wire;

pub use bitseq::BitSeq;
pub use error::{KcError, Result};
pub use freq::FreqTable;
pub use huffman::{SimplifiedTree, TreeConfig};
