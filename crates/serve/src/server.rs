//! The serving core: a model registry with per-entry batching queues.
//!
//! One [`Server`] owns a shared [`Engine`] and a registry of named
//! models. Each entry gets a **batch worker** thread and a bounded
//! request queue:
//!
//! * **Coalescing** — the worker drains up to `max_batch` queued
//!   requests into one [`ModelGraph::forward_batch_into`] call. The cap
//!   comes from the per-plan workload model
//!   ([`ModelGraph::preferred_batch`]) unless pinned in
//!   [`ServeConfig::max_batch`]; the flush rule is size-or-deadline
//!   (a partial batch flushes after [`ServeConfig::flush`]).
//! * **Backpressure** — a submit finding `queue_depth` requests already
//!   queued is rejected immediately with the typed
//!   [`ServeError::QueueFull`]; the queue never grows without bound.
//! * **Zero-allocation warm path** — request cells, queue storage, the
//!   worker's batch buffers, and the pooled [`BatchScratch`] are all
//!   reused, so a warmed request (submit → coalesce → forward →
//!   respond) performs no heap allocation end to end. The counting-
//!   allocator gate in `tests/alloc_steady_state.rs` enforces this.
//! * **Hot-swap** — [`Server::swap_bytes`] atomically replaces an
//!   entry's current [`ModelEntry`]; batches in flight keep their `Arc`
//!   to the old version, queued requests are served by the new one, and
//!   every response reports the version that actually served it.
//! * **Graceful drain** — [`Server::shutdown`] rejects new submits,
//!   lets the workers flush everything already queued, and joins them;
//!   no accepted request is ever dropped.

use crate::error::{Result, ServeError};
use crate::registry::{check_swap_compatible, deploy_bytes, shape_of, ModelEntry, ModelShape};
use bitnn::graph::BatchScratch;
use bitnn::{Engine, ExecPolicy, Tensor};
use kc_core::wire::{ModelInfo, StatsReport};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest batch the coalescer will ever form (matches the cap in
/// [`bitnn::ModelGraph::preferred_batch`]); also sizes the batch
/// histogram.
pub const MAX_BATCH: usize = 64;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Execution policy for the shared engine (threads, `min_work`,
    /// lowering, dedup).
    pub policy: ExecPolicy,
    /// Backpressure threshold: submits beyond this many *queued*
    /// requests are rejected with [`ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Coalescing cap; `0` derives it from the per-plan workload model
    /// ([`bitnn::ModelGraph::preferred_batch`]).
    pub max_batch: usize,
    /// How long a partial batch may wait for more requests before the
    /// worker flushes it anyway.
    pub flush: Duration,
    /// Seed the non-compressed layer weights are regenerated from (the
    /// same convention as `bnnkc run --seed`).
    pub seed: u64,
    /// Input image side for spec-less v1 containers (v2/v3 embed it).
    pub image: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: ExecPolicy::default(),
            queue_depth: 256,
            max_batch: 0,
            flush: Duration::from_micros(200),
            seed: 1,
            image: 32,
        }
    }
}

/// What a request cell is currently doing. The transitions are
/// `Idle → Queued → Done|Failed → Idle`, always under the cell mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Queued,
    Done,
    Failed,
}

/// Shared request state: the client writes `input`, the batch worker
/// writes `output`/`version`, both reused across requests.
#[derive(Debug)]
struct CellState {
    input: Tensor,
    output: Tensor,
    version: u32,
    phase: Phase,
}

#[derive(Debug)]
struct Cell {
    m: Mutex<CellState>,
    cv: Condvar,
}

/// A client-owned, reusable request slot. Create one per client thread
/// and pass it to every [`Server::infer_blocking`] call: after the first
/// warm-up request its tensors are sized and the per-request path stops
/// allocating.
#[derive(Debug)]
pub struct InferSlot {
    cell: Arc<Cell>,
}

impl InferSlot {
    /// A fresh slot (unsized until its first request).
    pub fn new() -> Self {
        InferSlot {
            cell: Arc::new(Cell {
                m: Mutex::new(CellState {
                    input: Tensor::default(),
                    output: Tensor::default(),
                    version: 0,
                    phase: Phase::Idle,
                }),
                cv: Condvar::new(),
            }),
        }
    }
}

impl Default for InferSlot {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct SlotQueue {
    q: VecDeque<Arc<Cell>>,
    /// When the oldest queued request arrived (the flush deadline base).
    first_at: Instant,
    draining: bool,
}

/// One registry entry: its queue, its batch worker's wakeup, and the
/// atomically swappable current model version.
#[derive(Debug)]
struct Slot {
    name: String,
    queue: Mutex<SlotQueue>,
    cv: Condvar,
    current: RwLock<Arc<ModelEntry>>,
    shape: ModelShape,
    max_batch: usize,
    queue_depth: usize,
    /// Maintenance hold: a paused worker keeps queueing requests (up to
    /// the backpressure limit) but does not flush batches.
    paused: AtomicBool,
}

#[derive(Debug)]
struct Counters {
    served: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
    swaps: AtomicU64,
    hist: [AtomicU64; MAX_BATCH + 1],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Debug)]
struct Inner {
    cfg: ServeConfig,
    engine: Engine,
    models: RwLock<HashMap<String, Arc<Slot>>>,
    stats: Counters,
}

/// The serving daemon core (transport-agnostic; see [`crate::net`] for
/// the wire front end).
#[derive(Debug)]
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Copy `src` into `dst`, reusing `dst`'s buffer when the shapes
/// already match (the steady-state case on the serve path).
fn copy_tensor(src: &Tensor, dst: &mut Tensor) {
    if dst.shape() == src.shape() {
        dst.data_mut().copy_from_slice(src.data());
    } else {
        *dst = src.clone();
    }
}

impl Server {
    /// A server with no models registered yet.
    pub fn new(cfg: ServeConfig) -> Self {
        let engine = Engine::new(cfg.policy);
        Server {
            inner: Arc::new(Inner {
                cfg,
                engine,
                models: RwLock::new(HashMap::new()),
                stats: Counters::default(),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The engine all entries execute on.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Register a model from container bytes under `name` and start its
    /// batch worker.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateModel`] if the name is taken,
    /// [`ServeError::Container`] for undecodable/tampered containers.
    pub fn register_bytes(&self, name: &str, bytes: &[u8]) -> Result<ModelShape> {
        let cfg = &self.inner.cfg;
        let entry = deploy_bytes(bytes, &self.inner.engine, cfg.seed, cfg.image, 1)?;
        let shape = shape_of(&entry.graph)?;
        let max_batch = match cfg.max_batch {
            0 => entry.graph.preferred_batch(&cfg.policy),
            n => n.min(MAX_BATCH),
        }
        .max(1);
        let slot = Arc::new(Slot {
            name: name.to_string(),
            queue: Mutex::new(SlotQueue {
                q: VecDeque::with_capacity(cfg.queue_depth + 1),
                first_at: Instant::now(),
                draining: false,
            }),
            cv: Condvar::new(),
            current: RwLock::new(Arc::new(entry)),
            shape,
            max_batch,
            queue_depth: cfg.queue_depth.max(1),
            paused: AtomicBool::new(false),
        });
        {
            let mut models = self.inner.models.write().expect("registry lock");
            if models.contains_key(name) {
                return Err(ServeError::DuplicateModel(name.to_string()));
            }
            models.insert(name.to_string(), slot.clone());
        }
        let inner = self.inner.clone();
        let handle = std::thread::Builder::new()
            .name(format!("bnnkc-serve:{name}"))
            .spawn(move || batch_worker(&inner, &slot))
            .expect("spawn batch worker");
        self.workers.lock().expect("workers lock").push(handle);
        Ok(shape)
    }

    /// Register a model from a container file.
    ///
    /// # Errors
    ///
    /// As [`Self::register_bytes`], plus [`ServeError::Io`].
    pub fn register_path(&self, name: &str, path: &std::path::Path) -> Result<ModelShape> {
        let bytes = std::fs::read(path)?;
        self.register_bytes(name, &bytes)
    }

    fn slot(&self, model: &str) -> Result<Arc<Slot>> {
        self.inner
            .models
            .read()
            .expect("registry lock")
            .get(model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))
    }

    /// The serving geometry of a registered model.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`].
    pub fn model_shape(&self, model: &str) -> Result<ModelShape> {
        Ok(self.slot(model)?.shape)
    }

    /// Requests queued (not yet batched) for `model` right now.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`].
    pub fn queue_len(&self, model: &str) -> Result<usize> {
        let slot = self.slot(model)?;
        let g = slot.queue.lock().expect("queue lock");
        Ok(g.q.len())
    }

    /// Submit one input and block until its response. `slot` is the
    /// caller's reusable request cell; the logits land in `out` (also
    /// reused). Returns the version of the model that served the
    /// request.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] under backpressure,
    /// [`ServeError::ShuttingDown`] during drain,
    /// [`ServeError::UnknownModel`] / [`ServeError::ShapeMismatch`] for
    /// bad requests, [`ServeError::Internal`] if the batch forward
    /// failed.
    pub fn infer_blocking(
        &self,
        model: &str,
        slot: &mut InferSlot,
        input: &Tensor,
        out: &mut Tensor,
    ) -> Result<u32> {
        let mslot = self.slot(model)?;
        let expected = mslot.shape.input_shape();
        if input.shape() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                got: input.shape().to_vec(),
            });
        }
        let cell = &slot.cell;
        {
            let mut cs = cell.m.lock().expect("cell lock");
            copy_tensor(input, &mut cs.input);
            cs.phase = Phase::Queued;
        }
        {
            let mut g = mslot.queue.lock().expect("queue lock");
            if g.draining {
                cell.m.lock().expect("cell lock").phase = Phase::Idle;
                return Err(ServeError::ShuttingDown);
            }
            if g.q.len() >= mslot.queue_depth {
                cell.m.lock().expect("cell lock").phase = Phase::Idle;
                self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::QueueFull);
            }
            if g.q.is_empty() {
                g.first_at = Instant::now();
            }
            g.q.push_back(cell.clone());
            mslot.cv.notify_one();
        }
        let mut cs = cell.m.lock().expect("cell lock");
        while cs.phase == Phase::Queued {
            cs = cell.cv.wait(cs).expect("cell wait");
        }
        let result = match cs.phase {
            Phase::Done => {
                copy_tensor(&cs.output, out);
                Ok(cs.version)
            }
            _ => Err(ServeError::Internal("batch forward failed")),
        };
        cs.phase = Phase::Idle;
        result
    }

    /// Atomically replace `model`'s entry with a new container version.
    /// Queued requests and batches in flight are unaffected: in-flight
    /// batches finish on the version they started with, queued requests
    /// are served by the new one, and no request is dropped. The new
    /// monotonic version is returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::Container`] — the
    /// latter with [`kc_core::KcError::IncompatibleModel`] for
    /// arch/scale-incompatible candidates.
    pub fn swap_bytes(&self, model: &str, bytes: &[u8]) -> Result<u32> {
        let slot = self.slot(model)?;
        let cfg = &self.inner.cfg;
        let current = slot.current.read().expect("current lock").clone();
        let next_version = current.version + 1;
        let entry = deploy_bytes(
            bytes,
            &self.inner.engine,
            cfg.seed,
            slot.shape.image,
            next_version,
        )?;
        check_swap_compatible(&current.graph, &entry.graph)?;
        *slot.current.write().expect("current lock") = Arc::new(entry);
        self.inner.stats.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(next_version)
    }

    /// [`Self::swap_bytes`] from a container file.
    ///
    /// # Errors
    ///
    /// As [`Self::swap_bytes`], plus [`ServeError::Io`].
    pub fn swap_path(&self, model: &str, path: &std::path::Path) -> Result<u32> {
        let bytes = std::fs::read(path)?;
        self.swap_bytes(model, &bytes)
    }

    /// Hold `model`'s batch worker: requests keep queueing (up to the
    /// backpressure limit) but no batch flushes until [`Self::resume`].
    /// A maintenance window primitive; the backpressure tests use it to
    /// fill queues deterministically.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`].
    pub fn pause(&self, model: &str) -> Result<()> {
        self.slot(model)?.paused.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Release a [`Self::pause`]d worker.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`].
    pub fn resume(&self, model: &str) -> Result<()> {
        let slot = self.slot(model)?;
        slot.paused.store(false, Ordering::SeqCst);
        slot.cv.notify_all();
        Ok(())
    }

    /// Daemon counters and the registry contents, in the wire report
    /// shape.
    pub fn stats_report(&self) -> StatsReport {
        let s = &self.inner.stats;
        let mut models: Vec<ModelInfo> = self
            .inner
            .models
            .read()
            .expect("registry lock")
            .values()
            .map(|slot| {
                let queued = slot.queue.lock().expect("queue lock").q.len();
                let version = slot.current.read().expect("current lock").version;
                ModelInfo {
                    name: slot.name.clone(),
                    version,
                    channels: slot.shape.channels as u32,
                    image: slot.shape.image as u32,
                    classes: slot.shape.classes as u32,
                    queued: queued as u32,
                    queue_depth: slot.queue_depth as u32,
                    max_batch: slot.max_batch as u32,
                }
            })
            .collect();
        models.sort_by(|a, b| a.name.cmp(&b.name));
        let batch_hist = s
            .hist
            .iter()
            .enumerate()
            .filter_map(|(size, c)| match c.load(Ordering::Relaxed) {
                0 => None,
                n => Some((size as u32, n)),
            })
            .collect();
        StatsReport {
            served: s.served.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            swaps: s.swaps.load(Ordering::Relaxed),
            models,
            batch_hist,
        }
    }

    /// Begin a graceful drain: new submits are rejected with
    /// [`ServeError::ShuttingDown`], every already-queued request is
    /// still served, and the batch workers exit once their queues are
    /// empty. Blocks until all workers have been joined. Idempotent.
    pub fn begin_drain(&self) {
        let slots: Vec<Arc<Slot>> = self
            .inner
            .models
            .read()
            .expect("registry lock")
            .values()
            .cloned()
            .collect();
        for slot in &slots {
            let mut g = slot.queue.lock().expect("queue lock");
            g.draining = true;
            // Drain overrides pause: a paused worker must still flush.
            slot.paused.store(false, Ordering::SeqCst);
            slot.cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Consume the server after a graceful drain (see
    /// [`Self::begin_drain`]).
    pub fn shutdown(self) {
        self.begin_drain();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_drain();
    }
}

/// The per-entry batch worker: gather-coalesce-forward-respond until
/// drained.
fn batch_worker(inner: &Inner, slot: &Slot) {
    let engine = &inner.engine;
    let flush = inner.cfg.flush;
    let mut scratch = BatchScratch::default();
    let mut cells: Vec<Arc<Cell>> = Vec::with_capacity(slot.max_batch);
    let mut inputs: Vec<Tensor> = Vec::with_capacity(slot.max_batch);
    let mut outs: Vec<Tensor> = Vec::new();
    loop {
        // Gather one batch (or learn that the drain is complete).
        {
            let mut g = slot.queue.lock().expect("queue lock");
            loop {
                if g.draining {
                    if g.q.is_empty() {
                        return;
                    }
                    break; // flush immediately during drain
                }
                let paused = slot.paused.load(Ordering::SeqCst);
                if !paused && g.q.len() >= slot.max_batch {
                    break;
                }
                if !paused && !g.q.is_empty() {
                    let elapsed = g.first_at.elapsed();
                    if elapsed >= flush {
                        break;
                    }
                    let (g2, _) = slot
                        .cv
                        .wait_timeout(g, flush - elapsed)
                        .expect("worker wait");
                    g = g2;
                } else {
                    g = slot.cv.wait(g).expect("worker wait");
                }
            }
            let n = g.q.len().min(slot.max_batch);
            cells.clear();
            cells.extend(g.q.drain(..n));
            if !g.q.is_empty() {
                g.first_at = Instant::now();
            }
        }
        let n = cells.len();
        if n == 0 {
            continue;
        }
        // The whole batch runs on one version: snapshot it before the
        // forward so a concurrent swap cannot tear the batch.
        let entry = slot.current.read().expect("current lock").clone();
        if inputs.len() < n {
            inputs.resize_with(n, Tensor::default);
        }
        for (cell, dst) in cells.iter().zip(inputs.iter_mut()) {
            let cs = cell.m.lock().expect("cell lock");
            copy_tensor(&cs.input, dst);
        }
        let result = entry
            .graph
            .forward_batch_into(&inputs[..n], engine, &mut scratch, &mut outs);
        // Stats go first: by the time a client sees its response, the
        // counters already include it.
        let stats = &inner.stats;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.hist[n.min(MAX_BATCH)].fetch_add(1, Ordering::Relaxed);
        if result.is_ok() {
            stats.served.fetch_add(n as u64, Ordering::Relaxed);
        }
        for (i, cell) in cells.iter().enumerate() {
            let mut cs = cell.m.lock().expect("cell lock");
            match &result {
                Ok(()) => {
                    copy_tensor(&outs[i], &mut cs.output);
                    cs.version = entry.version;
                    cs.phase = Phase::Done;
                }
                Err(_) => cs.phase = Phase::Failed,
            }
            cell.cv.notify_one();
        }
        cells.clear();
    }
}
