//! `bnnkc serve`: a batch-coalescing inference daemon for compressed
//! BNN containers.
//!
//! The paper's kernel-compression pipeline makes single-image inference
//! cheap enough that *serving overhead* — one thread pool wakeup, one
//! scratch allocation, one dispatch per request — starts to matter. This
//! crate amortises it the same way the batch API does: a per-model
//! **batch worker** coalesces concurrently arriving requests into one
//! [`bitnn::ModelGraph::forward_batch_into`] call, sized by the same
//! workload model that picks the batch parallelism split
//! ([`bitnn::ModelGraph::preferred_batch`]). On a multicore host a
//! coalesced batch splits across cores while isolated requests would
//! each run single-threaded below the `min_work` floor; on a single
//! core the coalesced and batch-1 paths run the same code and serving
//! stays at parity (the perfsuite encodes exactly this clamp).
//!
//! The moving parts:
//!
//! * [`Server`] — registry of named models (integrity-verified `.bkcm`
//!   containers, v1–v3), one batching queue + worker per entry,
//!   backpressure past a configured queue depth, atomic hot-swap, and a
//!   graceful drain that never drops an accepted request.
//! * [`net`] — the TCP daemon loop speaking the length-prefixed
//!   [`kc_core::wire`] protocol, and the blocking [`Client`] used by
//!   `loadgen`, the tests, and CI.
//! * [`ServeError`] — the typed rejection vocabulary; the serve path
//!   has no panicking branches on request data.

#![warn(missing_docs)]

pub mod error;
pub mod net;
pub mod registry;
pub mod server;

pub use error::{Result, ServeError};
pub use net::{serve_listener, Client};
pub use registry::{ModelEntry, ModelShape};
pub use server::{InferSlot, ServeConfig, Server, MAX_BATCH};
