//! TCP front end for the serving core, speaking the
//! [`kc_core::wire`] frame protocol, plus the blocking [`Client`] the
//! load generator and the test suite use.
//!
//! The daemon loop is deliberately simple: one accept loop, one thread
//! per connection (scoped, so everything borrows the [`Server`]
//! directly), one in-flight request per connection. Concurrency comes
//! from concurrent *connections* — which is exactly what the batch
//! coalescer wants to see. A malformed frame gets a typed
//! [`Response::Err`] answer and the connection is closed; the daemon
//! itself never goes down on bad bytes.

use crate::error::ServeError;
use crate::server::{InferSlot, Server};
use bitnn::Tensor;
use kc_core::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorCode, FrameError, Request, Response, WireError, HEADER_LEN,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How often a blocked connection read wakes up to check the shutdown
/// flag.
const POLL: Duration = Duration::from_millis(200);

/// A [`Read`] adapter that turns read timeouts into retries — and into
/// a clean EOF once the daemon-wide stop flag is set — so connection
/// handlers always notice a shutdown within one [`POLL`] interval.
struct StopAwareReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for StopAwareReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

fn error_response(e: &ServeError) -> Response {
    Response::Err {
        code: e.code(),
        message: e.to_string(),
    }
}

/// Serve one connection until the peer closes, a frame is malformed, or
/// the daemon stops. Returns `true` if the peer asked for a daemon
/// shutdown.
fn handle_connection(server: &Server, stream: &TcpStream, stop: &AtomicBool) -> bool {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = StopAwareReader { stream, stop };
    let mut writer = stream;
    let mut in_buf: Vec<u8> = Vec::new();
    let mut out_buf: Vec<u8> = Vec::new();
    // Per-connection reusable inference state: one request slot, one
    // input tensor, one output tensor, one logits vector.
    let mut slot = InferSlot::new();
    let mut input = Tensor::default();
    let mut output = Tensor::default();
    let mut resp_data: Vec<f32> = Vec::new();
    loop {
        match read_frame(&mut reader, &mut in_buf) {
            Ok(false) => return false, // peer closed (or daemon stopped)
            Ok(true) => {}
            Err(FrameError::Io(_)) => return false,
            Err(FrameError::Wire(e)) => {
                // Typed rejection, then drop the connection: after a
                // malformed frame the stream offset can no longer be
                // trusted.
                let resp = Response::Err {
                    code: ErrorCode::BadInput,
                    message: e.to_string(),
                };
                encode_response(&resp, &mut out_buf);
                let _ = write_frame(&mut writer, &out_buf);
                return false;
            }
        }
        let req = match decode_request(&in_buf) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Err {
                    code: ErrorCode::BadInput,
                    message: e.to_string(),
                };
                encode_response(&resp, &mut out_buf);
                let _ = write_frame(&mut writer, &out_buf);
                return false;
            }
        };
        let (resp, shutdown) = match req {
            Request::Ping => (Response::Pong, false),
            Request::Stats => (Response::Stats(server.stats_report()), false),
            Request::Swap { model, path } => {
                match server.swap_path(&model, std::path::Path::new(&path)) {
                    Ok(version) => (Response::Swapped { version }, false),
                    Err(e) => (error_response(&e), false),
                }
            }
            Request::Shutdown => (Response::Closing, true),
            Request::Infer(r) => {
                let shape = [
                    1,
                    r.shape[0] as usize,
                    r.shape[1] as usize,
                    r.shape[2] as usize,
                ];
                if input.shape() != shape {
                    input = Tensor::zeros(&shape);
                }
                input.data_mut().copy_from_slice(&r.data);
                match server.infer_blocking(&r.model, &mut slot, &input, &mut output) {
                    Ok(version) => {
                        resp_data.clear();
                        resp_data.extend_from_slice(output.data());
                        (
                            Response::Logits {
                                seq: r.seq,
                                version,
                                data: std::mem::take(&mut resp_data),
                            },
                            false,
                        )
                    }
                    Err(e) => (error_response(&e), false),
                }
            }
        };
        encode_response(&resp, &mut out_buf);
        // Reclaim the logits vector for the next request on this
        // connection.
        if let Response::Logits { data, .. } = resp {
            resp_data = data;
        }
        if write_frame(&mut writer, &out_buf).is_err() {
            return false;
        }
        let _ = writer.flush();
        if shutdown {
            return true;
        }
    }
}

/// Run the daemon on `listener` until a client sends
/// [`Request::Shutdown`]. Connections are handled on scoped threads; on
/// shutdown the accept loop stops, every open connection winds down
/// within one poll interval, and the server drains gracefully (all
/// queued requests still get answers).
///
/// # Errors
///
/// Propagates accept-loop I/O failures. Per-connection I/O errors only
/// close that connection.
pub fn serve_listener(server: &Server, listener: &TcpListener) -> std::io::Result<()> {
    let stop = AtomicBool::new(false);
    let local = listener.local_addr()?;
    std::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            let (stream, _peer) = listener.accept()?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stop_ref = &stop;
            scope.spawn(move || {
                if handle_connection(server, &stream, stop_ref) {
                    stop_ref.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can observe the
                    // stop flag.
                    let _ = TcpStream::connect(local);
                }
            });
        }
        Ok(())
    })?;
    server.begin_drain();
    Ok(())
}

/// A blocking wire-protocol client: one request in flight at a time,
/// buffers reused across calls.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    out_buf: Vec<u8>,
    in_buf: Vec<u8>,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            out_buf: Vec::new(),
            in_buf: Vec::new(),
        })
    }

    /// Send one request and block for its response.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] for transport failures (including the daemon
    /// closing the connection), [`FrameError::Wire`] for malformed
    /// response frames.
    pub fn call(&mut self, req: &Request) -> Result<Response, FrameError> {
        encode_request(req, &mut self.out_buf);
        write_frame(&mut self.stream, &self.out_buf)?;
        self.stream.flush()?;
        if !read_frame(&mut self.stream, &mut self.in_buf)? {
            return Err(FrameError::Wire(WireError::Truncated {
                needed: HEADER_LEN,
                have: 0,
            }));
        }
        Ok(decode_response(&self.in_buf)?)
    }
}
