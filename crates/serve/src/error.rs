//! Typed errors for the serving layer. The serve path never panics on
//! request data: every rejection is one of these variants, and the hot
//! ones ([`ServeError::QueueFull`], [`ServeError::ShuttingDown`]) are
//! allocation-free unit variants so backpressure rejection stays off the
//! heap.

use bitnn::BitnnError;
use kc_core::wire::ErrorCode;
use kc_core::KcError;
use std::fmt;

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong registering, swapping, or serving a
/// model.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The model's queue is at its configured depth (backpressure). The
    /// request was rejected immediately; nothing was enqueued.
    QueueFull,
    /// The server is draining; no new requests are accepted.
    ShuttingDown,
    /// No registry entry has this name.
    UnknownModel(String),
    /// A registry entry with this name already exists.
    DuplicateModel(String),
    /// The request input does not have the model's `[1, c, h, w]` shape.
    ShapeMismatch {
        /// The shape the model expects.
        expected: [usize; 4],
        /// The shape the request carried.
        got: Vec<usize>,
    },
    /// Container decode/validation failed (including
    /// [`KcError::IncompatibleModel`] for arch/scale-incompatible
    /// hot-swaps and [`KcError::IntegrityViolation`] for tampered
    /// containers).
    Container(KcError),
    /// Model construction or execution failed.
    Model(BitnnError),
    /// Filesystem access for a registration or swap failed.
    Io(String),
    /// The batch worker failed the forward this request rode in.
    Internal(&'static str),
}

impl ServeError {
    /// The wire rejection code this error maps to.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::QueueFull => ErrorCode::QueueFull,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::UnknownModel(_) => ErrorCode::UnknownModel,
            ServeError::ShapeMismatch { .. } => ErrorCode::BadInput,
            ServeError::Container(KcError::IncompatibleModel(_)) => ErrorCode::Incompatible,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full: request rejected by backpressure"),
            ServeError::ShuttingDown => write!(f, "server is draining; request rejected"),
            ServeError::UnknownModel(name) => write!(f, "no registered model named `{name}`"),
            ServeError::DuplicateModel(name) => {
                write!(f, "a model named `{name}` is already registered")
            }
            ServeError::ShapeMismatch { expected, got } => write!(
                f,
                "input shape {got:?} does not match the model's {expected:?}"
            ),
            ServeError::Container(e) => write!(f, "container: {e}"),
            ServeError::Model(e) => write!(f, "model: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Internal(what) => write!(f, "internal serving failure: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<KcError> for ServeError {
    fn from(e: KcError) -> Self {
        ServeError::Container(e)
    }
}

impl From<BitnnError> for ServeError {
    fn from(e: BitnnError) -> Self {
        ServeError::Model(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
