//! Container → executable model deployment for the registry.
//!
//! A registry entry is a [`ModelEntry`]: a weighted [`ModelGraph`] built
//! from an integrity-verified `.bkcm` container (v1–v3), tagged with a
//! monotonic version that every hot-swap bumps. Deployment follows the
//! same path as `bnnkc run`: the graph topology comes from the
//! container's embedded spec (reconstructed from kernel dimensions for
//! v1), the non-compressed layers' weights are regenerated from the
//! serve-wide seed, and each compressed 3×3 kernel is stream-decoded
//! straight into the weight form the engine's dedup heuristic selects —
//! channel-packed lane words, or the dedup bank for compressed-domain
//! execution.

use crate::error::{Result, ServeError};
use bitnn::graph::arch::attach_weights;
use bitnn::graph::ShapeInfo;
use bitnn::{Engine, ModelGraph};
use kc_core::container::{read_model_container, ModelContainer};
use kc_core::KcError;

/// One deployed model version. Batches in flight hold an `Arc` of this,
/// so a hot-swap never invalidates a forward that already started.
#[derive(Debug)]
pub struct ModelEntry {
    /// The executable graph with deployed kernels.
    pub graph: ModelGraph,
    /// Monotonic registry version (1 for the initial registration).
    pub version: u32,
}

/// Input/output geometry of a deployed entry: what submit-time shape
/// validation and response sizing key on. Fixed across hot-swaps — a
/// swap that would change it is rejected as incompatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelShape {
    /// Input channels.
    pub channels: usize,
    /// Input image side.
    pub image: usize,
    /// Logit count.
    pub classes: usize,
}

impl ModelShape {
    /// The `[1, c, h, w]` tensor shape requests must carry.
    pub fn input_shape(&self) -> [usize; 4] {
        [1, self.channels, self.image, self.image]
    }
}

/// Read the entry geometry off a graph.
pub(crate) fn shape_of(graph: &ModelGraph) -> Result<ModelShape> {
    let shapes = graph.spec().shapes()?;
    let (channels, image) = match shapes.first() {
        Some(ShapeInfo::Map { ch, h, w }) if h == w => (*ch, *h),
        _ => {
            return Err(ServeError::Container(KcError::IncompatibleModel(
                "container spec has no square image input".into(),
            )))
        }
    };
    let classes = match shapes.last() {
        Some(ShapeInfo::Flat { features }) => *features,
        _ => {
            return Err(ServeError::Container(KcError::IncompatibleModel(
                "container spec does not end in a flat logit vector".into(),
            )))
        }
    };
    Ok(ModelShape {
        channels,
        image,
        classes,
    })
}

/// Deploy a parsed container: rebuild the weighted graph from its spec
/// (fallback `image` is only used for spec-less v1 containers) and
/// stream-decode every kernel into the engine's preferred weight form.
pub fn deploy(
    container: &ModelContainer,
    engine: &Engine,
    seed: u64,
    image: usize,
    version: u32,
) -> Result<ModelEntry> {
    let spec = container.spec_or_reactnet(image)?;
    let mut graph = attach_weights(&spec, seed)?;
    if graph.num_conv3() != container.kernels.len() {
        return Err(ServeError::Container(KcError::IncompatibleModel(format!(
            "container has {} kernels, the topology needs {}",
            container.kernels.len(),
            graph.num_conv3()
        ))));
    }
    for (i, c) in container.kernels.iter().enumerate() {
        if engine.uses_bank(3, 3, c.channels) {
            graph.set_conv3_bank(i, c.decode_bank()?)?;
        } else {
            graph.set_conv3_packed(i, c.decode_packed()?)?;
        }
    }
    Ok(ModelEntry { graph, version })
}

/// Parse + deploy container bytes (integrity-verified for v3).
pub fn deploy_bytes(
    bytes: &[u8],
    engine: &Engine,
    seed: u64,
    image: usize,
    version: u32,
) -> Result<ModelEntry> {
    let container = read_model_container(bytes)?;
    deploy(&container, engine, seed, image, version)
}

/// Validate that `candidate` can hot-swap `current`: identical topology
/// (arch/scale) and identical input image, so queued request tensors
/// and the response geometry stay valid across the swap.
pub(crate) fn check_swap_compatible(current: &ModelGraph, candidate: &ModelGraph) -> Result<()> {
    if let Err(e) = current
        .spec()
        .same_topology_ignoring_image(candidate.spec())
    {
        return Err(ServeError::Container(KcError::IncompatibleModel(format!(
            "hot-swap rejected (arch/scale mismatch): {e}"
        ))));
    }
    let (cur, new) = (shape_of(current)?, shape_of(candidate)?);
    if cur != new {
        return Err(ServeError::Container(KcError::IncompatibleModel(format!(
            "hot-swap rejected: serving geometry {cur:?} would become {new:?}"
        ))));
    }
    Ok(())
}
